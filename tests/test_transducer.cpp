// Tests for the complete pressure transducer element.
#include "src/mems/transducer.hpp"

#include <gtest/gtest.h>

#include "src/common/units.hpp"

namespace tono::mems {
namespace {

TEST(PressureTransducer, ContactPressureRaisesCapacitance) {
  const PressureTransducer t{TransducerConfig{}};
  EXPECT_GT(t.capacitance(units::mmhg_to_pa(100.0)), t.capacitance(0.0));
}

TEST(PressureTransducer, BackpressureLowersBiasCapacitance) {
  TransducerConfig biased;
  biased.backpressure_pa = 10e3;
  const PressureTransducer with{biased};
  const PressureTransducer without{TransducerConfig{}};
  // Backpressure bends the membrane away from the bottom electrode.
  EXPECT_LT(with.bias_capacitance(), without.bias_capacitance());
}

TEST(PressureTransducer, BackpressureNullsEqualContactPressure) {
  TransducerConfig cfg;
  cfg.backpressure_pa = units::mmhg_to_pa(80.0);
  const PressureTransducer t{cfg};
  const PressureTransducer rest{TransducerConfig{}};
  // Contact pressure equal to the backpressure restores the rest capacitance.
  EXPECT_NEAR(t.capacitance(units::mmhg_to_pa(80.0)), rest.capacitance(0.0),
              1e-6 * rest.capacitance(0.0));
}

TEST(PressureTransducer, SensitivityPositive) {
  const PressureTransducer t{TransducerConfig{}};
  EXPECT_GT(t.sensitivity(), 0.0);
}

TEST(PressureTransducer, MismatchScalesCapacitance) {
  TransducerConfig cfg;
  cfg.capacitance_mismatch = 1.02;
  const PressureTransducer t{cfg};
  const PressureTransducer nominal{TransducerConfig{}};
  EXPECT_NEAR(t.bias_capacitance() / nominal.bias_capacitance(), 1.02, 1e-9);
}

TEST(PressureTransducer, TemperatureDrift) {
  TransducerConfig cfg;
  cfg.capacitance_tempco_per_k = 100e-6;
  const PressureTransducer t{cfg};
  const double c300 = t.capacitance(0.0, 300.0);
  const double c310 = t.capacitance(0.0, 310.0);
  EXPECT_NEAR(c310 / c300, 1.0 + 100e-6 * 10.0, 1e-9);
}

TEST(PressureTransducer, DeflectionSignConvention) {
  const PressureTransducer t{TransducerConfig{}};
  EXPECT_GT(t.deflection(units::mmhg_to_pa(100.0)), 0.0);
  TransducerConfig biased;
  biased.backpressure_pa = 10e3;
  const PressureTransducer tb{biased};
  EXPECT_LT(tb.deflection(0.0), 0.0);  // pushed up by backpressure
}

TEST(PressureTransducer, TouchDownAtExtremePressure) {
  const PressureTransducer t{TransducerConfig{}};
  EXPECT_FALSE(t.touches_down(units::mmhg_to_pa(200.0)));
  // Gap ≈ 0.9 µm, stiffness ~1.5e12 Pa/m → touch-down needs ~10 atm.
  EXPECT_TRUE(t.touches_down(5e6));
}

TEST(PressureTransducer, ReferenceCapacitanceIsPressureFree) {
  const PressureTransducer t{TransducerConfig{}};
  const double c_ref = t.reference_capacitance();
  EXPECT_GT(c_ref, 0.0);
  // The reference tracks the rest geometry, not the applied pressure.
  EXPECT_NEAR(c_ref, t.capacitance(0.0), 1e-3 * c_ref);
}

TEST(PressureTransducer, NoiseEquivalentPressureSmall) {
  const PressureTransducer t{TransducerConfig{}};
  const double nep = t.noise_equivalent_pressure_density();
  EXPECT_GT(nep, 0.0);
  // Brownian noise of a stiff micro-membrane: far below 1 mmHg/√Hz.
  EXPECT_LT(nep, units::mmhg_to_pa(0.1));
}

TEST(PressureTransducer, NepGrowsWithTemperature) {
  const PressureTransducer t{TransducerConfig{}};
  EXPECT_GT(t.noise_equivalent_pressure_density(400.0),
            t.noise_equivalent_pressure_density(300.0));
}

// Property: capacitance monotone in contact pressure for several bias points.
class BiasSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(BiasSweepTest, MonotoneAroundBias) {
  TransducerConfig cfg;
  cfg.backpressure_pa = GetParam();
  const PressureTransducer t{cfg};
  double prev = t.capacitance(-5e3);
  for (double p = -4e3; p <= 30e3; p += 1e3) {
    const double c = t.capacitance(p);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

INSTANTIATE_TEST_SUITE_P(Backpressures, BiasSweepTest,
                         ::testing::Values(0.0, 5e3, 10e3, 15e3));

}  // namespace
}  // namespace tono::mems
