# Empty compiler generated dependencies file for tono_common.
# This may be replaced when dependencies are built.
