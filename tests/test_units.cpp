// Tests for unit conversions — the boundary between clinical and SI units.
#include "src/common/units.hpp"

#include <gtest/gtest.h>

namespace tono::units {
namespace {

TEST(Units, MmhgRoundTrip) {
  for (double v : {0.0, 1.0, 80.0, 120.0, 300.0}) {
    EXPECT_NEAR(pa_to_mmhg(mmhg_to_pa(v)), v, 1e-12);
  }
}

TEST(Units, MmhgKnownValues) {
  EXPECT_NEAR(mmhg_to_pa(1.0), 133.322, 0.001);
  EXPECT_NEAR(mmhg_to_pa(760.0), atmosphere_pa, 30.0);  // 760 mmHg ≈ 1 atm
  EXPECT_NEAR(pa_to_mmhg(101325.0), 760.0, 0.01);
}

TEST(Units, KpaConversions) {
  EXPECT_DOUBLE_EQ(kpa_to_pa(13.3), 13300.0);
  EXPECT_DOUBLE_EQ(pa_to_kpa(kpa_to_pa(7.7)), 7.7);
}

TEST(Units, LengthConversions) {
  EXPECT_DOUBLE_EQ(um_to_m(100.0), 100e-6);
  EXPECT_DOUBLE_EQ(m_to_um(um_to_m(3.0)), 3.0);
  EXPECT_DOUBLE_EQ(mm_to_m(2.5), 2.5e-3);
}

TEST(Units, CapacitanceConversions) {
  EXPECT_DOUBLE_EQ(ff_to_f(100.0), 100e-15);
  EXPECT_DOUBLE_EQ(f_to_ff(ff_to_f(25.0)), 25.0);
  EXPECT_DOUBLE_EQ(pf_to_f(1.0), 1e-12);
  EXPECT_DOUBLE_EQ(f_to_pf(pf_to_f(0.5)), 0.5);
}

TEST(Units, FrequencyConversions) {
  EXPECT_NEAR(hz_to_rad(1.0), two_pi, 1e-15);
  EXPECT_DOUBLE_EQ(bpm_to_hz(60.0), 1.0);
  EXPECT_DOUBLE_EQ(hz_to_bpm(bpm_to_hz(72.0)), 72.0);
}

TEST(Units, PhysicalConstants) {
  EXPECT_NEAR(k_boltzmann, 1.380649e-23, 1e-29);
  EXPECT_NEAR(epsilon0, 8.854e-12, 1e-15);
  EXPECT_GT(room_temperature_kelvin, 270.0);
}

}  // namespace
}  // namespace tono::units
