file(REMOVE_RECURSE
  "CMakeFiles/tono_mems.dir/capacitor.cpp.o"
  "CMakeFiles/tono_mems.dir/capacitor.cpp.o.d"
  "CMakeFiles/tono_mems.dir/materials.cpp.o"
  "CMakeFiles/tono_mems.dir/materials.cpp.o.d"
  "CMakeFiles/tono_mems.dir/plate.cpp.o"
  "CMakeFiles/tono_mems.dir/plate.cpp.o.d"
  "CMakeFiles/tono_mems.dir/transducer.cpp.o"
  "CMakeFiles/tono_mems.dir/transducer.cpp.o.d"
  "libtono_mems.a"
  "libtono_mems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tono_mems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
