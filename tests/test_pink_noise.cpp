// Tests for the 1/f noise generator.
#include "src/common/pink_noise.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/statistics.hpp"
#include "src/dsp/noise_analysis.hpp"

namespace tono {
namespace {

std::vector<double> generate(std::size_t n, std::uint64_t seed = 5,
                             std::size_t octaves = 16) {
  PinkNoise pink{Rng{seed}, octaves};
  std::vector<double> x(n);
  for (auto& v : x) v = pink.next();
  return x;
}

TEST(PinkNoise, ZeroMeanUnitVariance) {
  const auto x = generate(1 << 18);
  EXPECT_NEAR(mean(x), 0.0, 0.1);
  EXPECT_NEAR(stddev(x), 1.0, 0.15);
}

TEST(PinkNoise, PsdSlopeIsMinusTenDbPerDecade) {
  const auto x = generate(1 << 18, 9);
  const double fs = 1000.0;
  dsp::WelchConfig wc;
  wc.segment_length = 4096;
  const auto psd = dsp::welch_psd(x, fs, wc);
  auto band_mean = [&](double f_lo, double f_hi) {
    double acc = 0.0;
    std::size_t n = 0;
    for (std::size_t k = 1; k < psd.freq_hz.size(); ++k) {
      if (psd.freq_hz[k] >= f_lo && psd.freq_hz[k] <= f_hi) {
        acc += psd.psd[k];
        ++n;
      }
    }
    return acc / static_cast<double>(n);
  };
  // Compare decades 1-2 Hz vs 10-20 Hz vs 100-200 Hz.
  const double p1 = band_mean(1.0, 2.0);
  const double p2 = band_mean(10.0, 20.0);
  const double p3 = band_mean(100.0, 200.0);
  EXPECT_NEAR(10.0 * std::log10(p1 / p2), 10.0, 3.0);
  EXPECT_NEAR(10.0 * std::log10(p2 / p3), 10.0, 3.0);
}

TEST(PinkNoise, DeterministicPerSeed) {
  PinkNoise a{Rng{3}};
  PinkNoise b{Rng{3}};
  for (int i = 0; i < 1000; ++i) EXPECT_DOUBLE_EQ(a.next(), b.next());
}

TEST(PinkNoise, DifferentSeedsDiffer) {
  PinkNoise a{Rng{3}};
  PinkNoise b{Rng{4}};
  bool differs = false;
  for (int i = 0; i < 100; ++i) {
    if (a.next() != b.next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(PinkNoise, RejectsBadOctaves) {
  EXPECT_THROW((PinkNoise{Rng{1}, 1}), std::invalid_argument);
  EXPECT_THROW((PinkNoise{Rng{1}, 30}), std::invalid_argument);
}

TEST(PinkNoise, FillNextBitIdenticalToScalarNext) {
  for (std::size_t n : {1u, 2u, 127u, 128u, 129u, 300u}) {
    PinkNoise scalar{Rng{91}, 20};
    PinkNoise bulk{Rng{91}, 20};
    std::vector<double> want(n);
    for (auto& v : want) v = scalar.next();
    std::vector<double> got(n);
    bulk.fill_next(got.data(), n);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(want[i], got[i]) << "n=" << n << " i=" << i;
    // Generator state (row table, counter, rng incl. spare) identical after.
    for (int i = 0; i < 50; ++i) ASSERT_EQ(scalar.next(), bulk.next());
  }
}

TEST(PinkNoise, FillNextInterleavesWithScalarNext) {
  PinkNoise scalar{Rng{17}, 16};
  PinkNoise mixed{Rng{17}, 16};
  std::vector<double> want(40);
  for (auto& v : want) v = scalar.next();
  std::vector<double> got(40);
  mixed.fill_next(got.data(), 13);            // odd count: rng spare cached
  for (int i = 13; i < 20; ++i) got[i] = mixed.next();
  mixed.fill_next(got.data() + 20, 20);
  for (std::size_t i = 0; i < 40; ++i) ASSERT_EQ(want[i], got[i]) << i;
}

TEST(PinkNoise, LowFrequencyPowerDominates) {
  const auto x = generate(1 << 16, 21);
  // The running mean over long blocks wanders far more than white noise's
  // would: block-mean variance stays high (hallmark of 1/f).
  const std::size_t block = 4096;
  std::vector<double> block_means;
  for (std::size_t i = 0; i + block <= x.size(); i += block) {
    block_means.push_back(
        mean(std::span<const double>{x.data() + i, block}));
  }
  // White noise block means would have variance 1/4096 ≈ 2.4e-4; pink stays
  // orders of magnitude above.
  EXPECT_GT(variance(block_means), 20.0 / 4096.0);
}

}  // namespace
}  // namespace tono
