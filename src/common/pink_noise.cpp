#include "src/common/pink_noise.hpp"

#include <cmath>
#include <stdexcept>

namespace tono {

PinkNoise::PinkNoise(Rng rng, std::size_t octaves) : rng_(rng), octaves_(octaves) {
  if (octaves_ < 2 || octaves_ > kMaxOctaves) {
    throw std::invalid_argument{"PinkNoise: octaves must be in [2, 24]"};
  }
  for (std::size_t k = 0; k < octaves_; ++k) rows_[k] = rng_.gaussian();
  // Sum of `octaves` unit-variance independent rows → variance = octaves;
  // normalize to unit variance.
  white_scale_ = 1.0 / std::sqrt(static_cast<double>(octaves_));
}

double PinkNoise::next() noexcept {
  ++counter_;
  // Voss-McCartney: re-draw row k when bit k of the counter toggles, i.e.
  // the lowest set bit selects exactly one row per sample.
  const std::uint64_t ctz_mask = counter_ & (~counter_ + 1);
  std::size_t row = 0;
  std::uint64_t m = ctz_mask;
  while (m > 1 && row + 1 < octaves_) {
    m >>= 1;
    ++row;
  }
  rows_[row] = rng_.gaussian();
  double sum = 0.0;
  for (std::size_t k = 0; k < octaves_; ++k) sum += rows_[k];
  return sum * white_scale_;
}

}  // namespace tono
