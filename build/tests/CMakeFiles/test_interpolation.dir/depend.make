# Empty dependencies file for test_interpolation.
# This may be replaced when dependencies are built.
