# Empty compiler generated dependencies file for tono_bio.
# This may be replaced when dependencies are built.
