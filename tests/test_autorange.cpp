// Tests for the §4 feedback-capacitor auto-ranging controller.
#include "src/core/autorange.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "src/core/calibration.hpp"
#include "src/core/pipeline.hpp"

namespace tono::core {
namespace {

std::vector<double> window_with_peak(double peak) {
  return {0.0, peak * 0.5, peak, -peak * 0.3, peak * 0.8};
}

TEST(AutoRanger, StaysPutWhenSignalFitsCurrentRange) {
  FeedbackAutoRanger ar{AutoRangeConfig{}, 3};  // 5 fF
  // Peak 0.5 at 5 fF: next range (2 fF) would predict 1.25 → stay.
  const auto d = ar.update(window_with_peak(0.5));
  EXPECT_FALSE(d.changed);
  EXPECT_EQ(d.range_index, 3u);
  EXPECT_DOUBLE_EQ(d.full_scale_ratio, 1.0);
}

TEST(AutoRanger, StepsFinerForSmallSignal) {
  FeedbackAutoRanger ar{AutoRangeConfig{}, 0};  // 50 fF
  // Peak 0.05 at 50 fF → at 25 fF predicted 0.1, well below headroom.
  const auto d = ar.update(window_with_peak(0.05));
  EXPECT_TRUE(d.changed);
  EXPECT_EQ(d.range_index, 1u);
  EXPECT_NEAR(d.full_scale_ratio, 25.0 / 50.0, 1e-12);
}

TEST(AutoRanger, WalksToFinestOverRepeatedUpdates) {
  FeedbackAutoRanger ar{AutoRangeConfig{}, 0};
  // A tiny signal: repeated updates walk one step at a time to the finest
  // range that keeps it under headroom. In physical units the signal is
  // peak₀ × bank[0]; once at range i the observed peak is that / bank[i].
  const double physical = 0.01 * 50e-15;
  for (int i = 0; i < 10; ++i) {
    const double observed = physical / ar.current_capacitance_f();
    (void)ar.update(window_with_peak(observed));
  }
  // At 2 fF the signal is 0.25 — comfortably inside, and no finer range
  // exists.
  EXPECT_EQ(ar.range_index(), 4u);
}

TEST(AutoRanger, BacksOffOnOverload) {
  FeedbackAutoRanger ar{AutoRangeConfig{}, 4};  // finest, 2 fF
  const auto d = ar.update(window_with_peak(0.95));
  EXPECT_TRUE(d.changed);
  EXPECT_EQ(d.range_index, 3u);
  EXPECT_NEAR(d.full_scale_ratio, 5.0 / 2.0, 1e-12);
}

TEST(AutoRanger, NoBackOffAtCoarsestRange) {
  FeedbackAutoRanger ar{AutoRangeConfig{}, 0};
  const auto d = ar.update(window_with_peak(0.99));
  EXPECT_FALSE(d.changed);
  EXPECT_EQ(d.range_index, 0u);
}

TEST(AutoRanger, HysteresisBandHolds) {
  // Peak between headroom and overload: no move in either direction.
  FeedbackAutoRanger ar{AutoRangeConfig{}, 2};
  const auto d = ar.update(window_with_peak(0.7));
  EXPECT_FALSE(d.changed);
}

TEST(AutoRanger, EmptyWindowNoChange) {
  FeedbackAutoRanger ar{AutoRangeConfig{}, 2};
  const auto d = ar.update({});
  EXPECT_FALSE(d.changed);
}

TEST(AutoRanger, BestRangeForPeakMonotone) {
  FeedbackAutoRanger ar{AutoRangeConfig{}, 0};
  EXPECT_GE(ar.best_range_for_peak(0.01), ar.best_range_for_peak(0.3));
}

TEST(AutoRanger, RejectsBadConfig) {
  AutoRangeConfig bad;
  bad.bank_f = {};
  EXPECT_THROW((FeedbackAutoRanger{bad}), std::invalid_argument);
  AutoRangeConfig bad2;
  bad2.bank_f = {10e-15, 20e-15};  // not decreasing
  EXPECT_THROW((FeedbackAutoRanger{bad2}), std::invalid_argument);
  AutoRangeConfig bad3;
  bad3.target_headroom = 0.9;
  bad3.overload_threshold = 0.8;  // below headroom
  EXPECT_THROW((FeedbackAutoRanger{bad3}), std::invalid_argument);
  EXPECT_THROW((FeedbackAutoRanger{AutoRangeConfig{}, 99}), std::invalid_argument);
}

TEST(AutoRanger, PipelineRangeSwitchRescalesValues) {
  // End-to-end: halving C_fb doubles the raw value of the same pressure,
  // and TwoPointCalibration::rescaled keeps the mmHg mapping consistent.
  AcquisitionPipeline pipe{ChipConfig::paper_chip()};
  auto settle_mean = [&](double p_pa) {
    const auto out = pipe.acquire_uniform([=](double) { return p_pa; }, 300);
    double acc = 0.0;
    for (std::size_t i = 150; i < out.size(); ++i) acc += out[i].value;
    return acc / 150.0;
  };
  const double p = 2000.0;
  const double v_before = settle_mean(p);
  const double ratio = pipe.set_feedback_capacitor(2.5e-15);  // 5 fF → 2.5 fF
  EXPECT_NEAR(ratio, 0.5, 1e-9);
  const double v_after = settle_mean(p);
  EXPECT_NEAR(v_after, v_before / ratio, 0.05 * std::abs(v_after) + 5.0 / 2048.0);

  // A calibration built before the switch maps the new values identically
  // after rescaling.
  const TwoPointCalibration cal{0.5, 0.1, 120.0, 80.0};
  const auto cal2 = cal.rescaled(ratio);
  EXPECT_NEAR(cal.to_mmhg(v_before), cal2.to_mmhg(v_before / ratio), 1e-9);
}

TEST(AutoRanger, CalibrationRescaleRejectsBadRatio) {
  const TwoPointCalibration cal{0.5, 0.1, 120.0, 80.0};
  EXPECT_THROW((void)cal.rescaled(0.0), std::invalid_argument);
  EXPECT_THROW((void)cal.rescaled(-1.0), std::invalid_argument);
}

}  // namespace
}  // namespace tono::core
