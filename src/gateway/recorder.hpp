// recorder.hpp — binary session record & replay (docs/GATEWAY.md).
//
// The validation story for a continuous-BP pipeline needs reproducible
// input corpora: record what actually crossed the wire, then replay it —
// paced like the 1 kS/s hardware, or time-compressed as fast as the host
// allows. The recorder taps the demux's on_envelope hook, so a session
// file holds exactly the CRC-validated frames the ward *consumed* (a lossy
// wire's drops are simply absent, and replaying reproduces the same
// decoder-side gap accounting).
//
// Per-session record file `session_<id>.rec`:
//
//   header:  'T' 'G' 'W' 'R' | u32 record version | u32 session id
//   record:  u32 payload length | u16 n_codes | u16 reserved(0)
//            u64 FNV-1a(payload) | payload (one FrameEncoder frame)
//
// All fields little-endian. Records are append-only; a crash mid-append
// leaves at most one torn record at the tail, which the replayer detects
// (short read or checksum mismatch) and truncates — every fully-written
// record before it replays byte-identically.
//
// The index (`index.ckpt`) is a framed checkpoint blob (magic, version,
// FNV-1a — src/common/checkpoint.hpp) carrying the run parameters needed
// to rebuild the identical hospital (base seed, session count,
// frames_per_step, duration) plus per-session totals. It is written once,
// at finalize(), via atomic_write_file: a killed recording has no index,
// and the replayer falls back to flags + tail-truncated session files.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <map>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/common/metrics.hpp"

namespace tono::gateway {

inline constexpr std::uint32_t kRecordFileVersion = 1;
inline constexpr std::uint32_t kRecordIndexVersion = 1;

class RecorderError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Run parameters a replay needs to rebuild the identical hospital.
struct RecordMeta {
  std::uint64_t base_seed{0};
  std::uint64_t sessions{0};
  std::uint64_t frames_per_step{0};
  double duration_s{0.0};
};

struct RecordedSessionInfo {
  std::uint32_t id{0};
  std::uint64_t frames{0};
  std::uint64_t codes{0};
  std::uint64_t bytes{0};  ///< payload bytes (frame wire bytes, not framing overhead)
};

struct RecordIndex {
  RecordMeta meta;
  std::vector<RecordedSessionInfo> sessions;
};

class SessionRecorder {
 public:
  /// Creates `dir` (and parents) if needed; throws RecorderError on failure.
  explicit SessionRecorder(std::string dir);
  ~SessionRecorder();

  SessionRecorder(const SessionRecorder&) = delete;
  SessionRecorder& operator=(const SessionRecorder&) = delete;

  /// Opens (truncates) the session's record file and writes its header.
  /// Call for every session before any record() — not thread-safe against
  /// concurrent record() calls.
  void open_session(std::uint32_t id);

  /// Appends one record. Thread-safe across *different* sessions (each id
  /// owns its stream; per-shard gateway pumps never share a session).
  void record(std::uint32_t id, std::span<const std::uint8_t> frame,
              std::uint16_t n_codes);

  /// Flushes every session file and atomically writes the index. Returns
  /// false when any write failed (session data already on disk stays).
  [[nodiscard]] bool finalize(const RecordMeta& meta);

  [[nodiscard]] std::uint64_t bytes_written() const noexcept {
    return bytes_written_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t frames_recorded() const noexcept {
    return frames_recorded_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  [[nodiscard]] static std::string session_file(const std::string& dir,
                                                std::uint32_t id);
  [[nodiscard]] static std::string index_file(const std::string& dir);

 private:
  struct Rec {
    std::ofstream out;
    RecordedSessionInfo info;
  };

  std::string dir_;
  std::map<std::uint32_t, Rec> sessions_;
  std::atomic<std::uint64_t> bytes_written_{0};
  std::atomic<std::uint64_t> frames_recorded_{0};
  metrics::Counter* recorder_bytes_metric_;
};

/// Streams one session's records back, validating each checksum. A torn or
/// corrupt tail record ends the stream cleanly (truncated() reports it);
/// everything before it is returned byte-identical to what was recorded.
class SessionReplayer {
 public:
  SessionReplayer(const std::string& dir, std::uint32_t id);

  /// Next valid record; false at end-of-stream (clean or truncated).
  bool next(std::vector<std::uint8_t>& frame, std::uint16_t& n_codes);

  [[nodiscard]] std::uint32_t session_id() const noexcept { return id_; }
  [[nodiscard]] std::uint64_t frames_read() const noexcept { return frames_read_; }
  [[nodiscard]] std::uint64_t codes_read() const noexcept { return codes_read_; }
  [[nodiscard]] bool truncated() const noexcept { return truncated_; }

  struct Totals {
    std::uint64_t frames{0};
    std::uint64_t codes{0};
    std::uint64_t bytes{0};
    bool torn{false};
  };
  /// Whole-file pass without retaining payloads (replay planning).
  [[nodiscard]] static Totals scan(const std::string& dir, std::uint32_t id);

  /// Session ids with a record file in `dir`, ascending.
  [[nodiscard]] static std::vector<std::uint32_t> list_sessions(
      const std::string& dir);

 private:
  std::ifstream in_;
  std::uint32_t id_;
  std::uint64_t frames_read_{0};
  std::uint64_t codes_read_{0};
  bool truncated_{false};
  bool done_{false};
};

/// Reads the finalize()-written index; nullopt when absent (killed or
/// unfinalized recording). Throws CheckpointError on a corrupt blob —
/// atomic_write_file makes that a real error, never a torn write.
[[nodiscard]] std::optional<RecordIndex> read_record_index(const std::string& dir);

}  // namespace tono::gateway
