// bp_monitoring — the full clinical-style session of §3.2 / Fig. 9.
//
// Protocol: place the sensor, scan the array for the strongest element,
// take one cuff reading to anchor the calibration, then monitor
// continuously and report per-beat blood pressure. Demonstrates exactly
// what a cuff cannot do: a beat-by-beat pressure trend.
#include <cstdio>
#include <cstring>
#include <iostream>

#include "src/common/metrics.hpp"
#include "src/common/table.hpp"
#include "src/core/monitor.hpp"

int main(int argc, char** argv) {
  using namespace tono;

  // Optional: --metrics <path> writes the runtime-metrics snapshot as JSONL.
  std::string metrics_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) metrics_path = argv[i + 1];
  }

  core::WristModel wrist;
  wrist.pulse.systolic_mmhg = 125.0;
  wrist.pulse.diastolic_mmhg = 82.0;
  wrist.pulse.heart_rate_bpm = 68.0;
  wrist.enable_artifacts = true;          // realistic: wander + occasional motion
  wrist.artifacts.spike_rate_hz = 0.02;

  core::BloodPressureMonitor monitor{core::ChipConfig::paper_chip(), wrist};

  std::puts("== 1. Array scan (strongest-element selection) ==");
  core::ScanConfig scan_cfg;
  scan_cfg.dwell_samples = 1500;
  const auto scan = monitor.localize(scan_cfg);
  for (const auto& e : scan.elements) {
    std::printf("  element (%zu,%zu): pulsation %.5f FS%s\n", e.row, e.col, e.amplitude,
                (e.row == scan.best_row && e.col == scan.best_col) ? "  <= selected" : "");
  }

  std::puts("\n== 2. Cuff calibration ==");
  const auto cuff = monitor.calibrate(15.0);
  std::printf("  cuff: %.1f / %.1f mmHg (took %.0f s — a cuff can do ~%.0f/hour)\n",
              cuff.systolic_mmhg, cuff.diastolic_mmhg, cuff.duration_s,
              bio::OscillometricCuff{bio::CuffConfig{}}.max_measurements_per_hour());
  std::printf("  calibration: mmHg = %.1f x value + %.1f\n",
              monitor.calibration().gain_mmhg_per_unit(),
              monitor.calibration().offset_mmhg());

  std::puts("\n== 3. Continuous monitoring (60 s) ==");
  const auto rep = monitor.monitor(60.0);
  std::printf("  %zu beats in 60 s; trend (5 s bins):\n", rep.beats.beats.size());
  // Per-5-second trend of systolic/diastolic.
  const double t0 = rep.time_s.front();
  for (int bin = 0; bin < 12; ++bin) {
    const double lo = t0 + 5.0 * bin;
    const double hi = lo + 5.0;
    double sys = 0.0;
    double dia = 0.0;
    int n = 0;
    for (const auto& b : rep.beats.beats) {
      if (b.peak_s >= lo && b.peak_s < hi) {
        sys += b.systolic_value;
        dia += b.diastolic_value;
        ++n;
      }
    }
    if (n > 0) {
      std::printf("  t=%3.0f..%3.0f s: %5.1f / %5.1f mmHg (%d beats)\n", lo - t0,
                  hi - t0, sys / n, dia / n, n);
    }
  }

  std::puts("\n== 4. Session summary ==");
  std::printf("  estimate    : %.1f / %.1f mmHg, MAP %.1f, HR %.1f bpm\n",
              rep.beats.mean_systolic, rep.beats.mean_diastolic, rep.beats.mean_map,
              rep.beats.heart_rate_bpm);
  std::printf("  ground truth: %.1f / %.1f mmHg, MAP %.1f, HR %.1f bpm\n",
              rep.truth_systolic_mmhg, rep.truth_diastolic_mmhg, rep.truth_map_mmhg,
              rep.truth_heart_rate_bpm);
  std::printf("  errors      : sys %+.2f, dia %+.2f, MAP %+.2f mmHg\n",
              rep.systolic_error_mmhg, rep.diastolic_error_mmhg, rep.map_error_mmhg);

  // A short excerpt of the waveform, Fig. 9 style.
  std::puts("\n== 5. Waveform excerpt (3 s) ==");
  SeriesWriter wave{"bp_excerpt", "time_s", "pressure_mmhg"};
  for (std::size_t i = 0; i < rep.waveform_mmhg.size() && rep.time_s[i] < t0 + 3.0; ++i) {
    wave.add(rep.time_s[i] - t0, rep.waveform_mmhg[i]);
  }
  wave.write_ascii_plot(std::cout, 72, 14);

  // Runtime observability: what the session cost and what the link carried.
  std::puts("\n== 6. Runtime metrics ==");
  metrics::register_standard_instruments();
  metrics::Registry::global().export_table(std::cout);
  if (!metrics_path.empty()) {
    if (metrics::Registry::global().write_jsonl_file(metrics_path)) {
      std::printf("wrote metrics snapshot to %s\n", metrics_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write metrics to %s\n", metrics_path.c_str());
      return 1;
    }
  }
  return 0;
}
