// Tests for the body-contact thermal-drift path (§4 stability effect).
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/statistics.hpp"
#include "src/common/units.hpp"
#include "src/core/monitor.hpp"
#include "src/core/pipeline.hpp"

namespace tono::core {
namespace {

TEST(ThermalDrift, ElementCapacitanceFollowsTempco) {
  SensorArray arr{ChipConfig::paper_chip()};
  const auto& e = arr.element(0);
  const double c300 = e.capacitance(0.0, 300.0);
  const double c310 = e.capacitance(0.0, 310.0);
  const double alpha = ChipConfig::paper_chip().transducer.capacitance_tempco_per_k;
  EXPECT_NEAR(c310 / c300, 1.0 + alpha * 10.0, 1e-9);
}

TEST(ThermalDrift, LutMatchesExactAcrossTemperature) {
  SensorArray arr{ChipConfig::paper_chip()};
  const auto& e = arr.element(0);
  for (double t : {290.0, 300.0, 310.0}) {
    const double p = units::mmhg_to_pa(40.0);
    EXPECT_NEAR(e.capacitance(p, t), e.capacitance_exact(p, t),
                1e-4 * e.capacitance_exact(p, t))
        << "T = " << t;
  }
}

TEST(ThermalDrift, PipelineTemperatureShiftsOutput) {
  AcquisitionPipeline pipe{ChipConfig::paper_chip()};
  auto settle_mean = [&](double kelvin) {
    pipe.set_temperature(kelvin);
    const auto out = pipe.acquire_uniform([](double) { return 0.0; }, 400);
    std::vector<double> tail;
    for (std::size_t i = 200; i < out.size(); ++i) tail.push_back(out[i].value);
    return mean(tail);
  };
  const double v300 = settle_mean(300.0);
  const double v307 = settle_mean(307.0);
  // ΔC = C0 · α · ΔT ≈ 95 fF · 30 ppm/K · 7 K ≈ 20 aF ≈ 0.4 % of the 5 fF
  // full scale — several LSB of baseline shift.
  EXPECT_GT(v307 - v300, 2.0 / 2048.0);
}

TEST(ThermalDrift, MonitorBaselineDriftsDuringWarmup) {
  WristModel wrist;
  wrist.enable_thermal_drift = true;
  wrist.thermal_tau_s = 20.0;  // fast warm-up so the test stays short
  BloodPressureMonitor mon{ChipConfig::paper_chip(), wrist};
  (void)mon.calibrate(8.0);
  const auto rep = mon.monitor(40.0);
  // Compare waveform baseline (per-beat diastolic mean) early vs late.
  double early = 0.0;
  double late = 0.0;
  std::size_t ne = 0;
  std::size_t nl = 0;
  const double mid = rep.time_s.front() + 20.0;
  for (const auto& b : rep.beats.beats) {
    if (b.foot_s < mid) {
      early += b.diastolic_value;
      ++ne;
    } else {
      late += b.diastolic_value;
      ++nl;
    }
  }
  ASSERT_GT(ne, 5u);
  ASSERT_GT(nl, 5u);
  const double drift = late / static_cast<double>(nl) - early / static_cast<double>(ne);
  EXPECT_GT(std::abs(drift), 1.0);  // mmHg-scale drift appears...
  // ...and without the thermal path it does not.
  WristModel stable = wrist;
  stable.enable_thermal_drift = false;
  BloodPressureMonitor mon2{ChipConfig::paper_chip(), stable};
  (void)mon2.calibrate(8.0);
  const auto rep2 = mon2.monitor(40.0);
  double early2 = 0.0;
  double late2 = 0.0;
  std::size_t ne2 = 0;
  std::size_t nl2 = 0;
  const double mid2 = rep2.time_s.front() + 20.0;
  for (const auto& b : rep2.beats.beats) {
    if (b.foot_s < mid2) {
      early2 += b.diastolic_value;
      ++ne2;
    } else {
      late2 += b.diastolic_value;
      ++nl2;
    }
  }
  const double drift2 =
      late2 / static_cast<double>(nl2) - early2 / static_cast<double>(ne2);
  EXPECT_GT(std::abs(drift), std::abs(drift2));
}

TEST(ThermalDrift, RecalibrationRestoresAccuracy) {
  WristModel wrist;
  wrist.enable_thermal_drift = true;
  wrist.thermal_tau_s = 10.0;
  BloodPressureMonitor mon{ChipConfig::paper_chip(), wrist};
  (void)mon.calibrate(8.0);
  // Let the die warm through several time constants, then recalibrate.
  (void)mon.monitor(40.0);
  (void)mon.calibrate(8.0);
  const auto rep = mon.monitor(20.0);
  EXPECT_LT(std::abs(rep.map_error_mmhg), 6.0);
}

}  // namespace
}  // namespace tono::core
