// rng.hpp — deterministic random number generation for simulation.
//
// Every stochastic component in tonosim (circuit noise sources, physiological
// variability, artefact injection) draws from an explicitly seeded Rng so
// that tests and benchmarks are reproducible bit-for-bit across runs.
//
// The engine is xoshiro256++ (Blackman & Vigna), chosen over std::mt19937 for
// speed, tiny state, and well-understood statistical quality. Distribution
// sampling is implemented here (not via <random> distributions) because the
// standard leaves distribution algorithms unspecified, which would make
// golden-value tests non-portable across standard libraries.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace tono {

class CheckpointReader;
class CheckpointWriter;

/// Deterministic pseudo-random generator with explicit seeding.
///
/// Satisfies the needs of all tonosim noise models: uniform, Gaussian,
/// exponential and Poisson draws plus stream splitting (`fork`) so that
/// adding a noise source to one block never perturbs the draw sequence of
/// another block.
class Rng {
 public:
  /// Seeds the full 256-bit state from a 64-bit seed via splitmix64,
  /// as recommended by the xoshiro authors.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept;

  /// Next raw 64-bit draw.
  /// Defined inline: the circuit noise models draw several values per
  /// 128 kHz modulator clock, so the draw path must not cost a function
  /// call per sample.
  [[nodiscard]] std::uint64_t next_u64() noexcept {
    // xoshiro256++
    const std::uint64_t result = rotl_(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl_(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53-bit resolution.
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be > 0.
  [[nodiscard]] std::uint64_t uniform_below(std::uint64_t n) noexcept;

  /// Standard normal draw (Marsaglia polar method; caches the spare value).
  [[nodiscard]] double gaussian() noexcept {
    if (has_spare_gaussian_) {
      has_spare_gaussian_ = false;
      return spare_gaussian_;
    }
    return gaussian_pair_();
  }

  /// Normal draw with given mean and standard deviation.
  [[nodiscard]] double gaussian(double mean, double sigma) noexcept {
    return mean + sigma * gaussian();
  }

  /// Fills dest[0..n) with the bit-identical sequence that n sequential
  /// gaussian() calls would produce, and leaves this generator in the
  /// bit-identical end state — including the spare-value cache: a spare
  /// pending on entry becomes dest[0], and an odd tail leaves the pair's
  /// second value cached for the next draw (bulk or scalar).
  ///
  /// Exists because the ΔΣ modulator's per-clock draw count is fixed by its
  /// config, so a whole output frame of noise can be generated up front in
  /// one tight loop (state in registers, no spare-cache branch per draw)
  /// instead of interleaved with the loop recurrence.
  void fill_gaussian(double* dest, std::size_t n) noexcept;

  /// Same, matching n sequential gaussian(mean, sigma) calls.
  void fill_gaussian(double* dest, std::size_t n, double mean, double sigma) noexcept;

  /// Batched multi-stream fill: for each stream w in [0, k),
  /// `rngs[w]->fill_gaussian(dests[w], ns[w])` — same destination bits, same
  /// end state per stream — but executed together so the independent xoshiro
  /// advances and polar-method uniforms vectorize across streams (one SIMD
  /// lane per stream; see rng_avx2.cpp). The transcendental tail of each
  /// accepted pair (std::log / std::sqrt) stays scalar per stream, which is
  /// what keeps every lane bit-identical to its solo fill: libm functions
  /// carry no vector-width reproducibility guarantee, elementwise IEEE
  /// arithmetic does.
  ///
  /// The streams must be distinct Rng objects. Falls back to per-stream
  /// scalar fills when no SIMD kernel is active (simd::active_level()), when
  /// k doesn't fill a vector, and for each stream's tail once the first
  /// stream of a vector group runs out (streams consume draws at different
  /// rejection rates).
  ///
  /// This is the ModulatorBank's frame-fill primitive: one call per noise
  /// source group per frame for a whole lane packet.
  static void fill_gaussian_multi(Rng* const* rngs, double* const* dests,
                                  const std::size_t* ns, std::size_t k) noexcept;

  /// Exponential draw with given rate lambda (> 0).
  [[nodiscard]] double exponential(double lambda) noexcept;

  /// Bernoulli trial with success probability p in [0, 1].
  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Derives an independent child stream. The child is seeded from this
  /// stream's output mixed with `salt`, so distinct salts give distinct,
  /// decorrelated streams, and the parent advances by exactly one draw.
  [[nodiscard]] Rng fork(std::uint64_t salt) noexcept;

  /// Convenience: derive a stream from a component name (FNV-1a of the name
  /// as salt). Lets each circuit block own `rng.fork_named("comparator")`.
  [[nodiscard]] Rng fork_named(std::string_view name) noexcept;

  /// Checkpointing (src/common/checkpoint.hpp): the full stream position —
  /// the 256-bit xoshiro state *and* the Marsaglia spare cache, so a stream
  /// suspended between the two halves of a Gaussian pair resumes with the
  /// cached spare, bit-identical to never having stopped.
  void serialize(CheckpointWriter& out) const;
  void restore(CheckpointReader& in);

 private:
  static constexpr std::uint64_t rotl_(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  /// Slow path of gaussian(): runs one polar-method rejection loop and
  /// stores the spare value.
  double gaussian_pair_() noexcept;

  /// Vector phase of fill_gaussian_multi for one 4-stream group (defined in
  /// rng_avx2.cpp, compiled with -mavx2, called only behind the runtime
  /// dispatch check). Advances pos[w] toward ns[w] and updates each stream's
  /// state/spare; returns with at least one stream complete. Callers finish
  /// the remaining tails with scalar fill_gaussian.
  static void fill_gaussian_x4_avx2_(Rng* const* rngs, double* const* dests,
                                     std::size_t* pos,
                                     const std::size_t* ns) noexcept;
  /// NEON twin for one 2-stream group (rng_neon.cpp).
  static void fill_gaussian_x2_neon_(Rng* const* rngs, double* const* dests,
                                     std::size_t* pos,
                                     const std::size_t* ns) noexcept;

  std::array<std::uint64_t, 4> state_{};
  double spare_gaussian_{0.0};
  bool has_spare_gaussian_{false};
};

}  // namespace tono
