# Empty compiler generated dependencies file for live_alarms.
# This may be replaced when dependencies are built.
