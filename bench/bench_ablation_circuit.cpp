// E9 — circuit non-ideality ablations of the ΔΣ readout.
//
// DESIGN.md's substitution argument rests on the behavioural model capturing
// the right circuit effects. This bench turns each non-ideality knob and
// reports the SNR impact, reproducing the textbook sensitivities a designer
// of this chip would have used for sizing:
//   * op-amp DC gain  — integrator leak; 2nd-order loops tolerate low gain,
//   * op-amp GBW      — incomplete settling; collapses below ~10× fs,
//   * comparator offset/hysteresis — noise-shaped, nearly free,
//   * clock jitter    — negligible at 15.6 Hz input,
//   * kT/C + thermal  — set the final floor together with the 12-bit word.
#include <cmath>
#include <iostream>

#include "bench/bench_util.hpp"

namespace {

using namespace tono;

double snr_with(const analog::ModulatorConfig& mc) {
  return bench::run_tone_test(mc, dsp::DecimationConfig{}, 0.875, 15.625, 4096)
      .analysis.snr_db;
}

void run() {
  bench::print_header("E9", "Circuit non-ideality ablations (SNR at -1.2 dBFS)");

  const analog::ModulatorConfig nominal;
  const double snr_nom = snr_with(nominal);
  std::cout << "nominal configuration: SNR = " << format_double(snr_nom, 2) << " dB\n";

  TextTable gt{"Op-amp DC gain (integrator leak)"};
  gt.set_header({"A0", "SNR [dB]", "delta [dB]"});
  for (double a0 : {100.0, 300.0, 1000.0, 5000.0, 100000.0}) {
    analog::ModulatorConfig mc = nominal;
    mc.opamp1.dc_gain = a0;
    mc.opamp2.dc_gain = a0;
    const double snr = snr_with(mc);
    gt.add_row({format_double(a0, 0), format_double(snr, 2),
                format_double(snr - snr_nom, 2)});
  }
  gt.print(std::cout);

  TextTable bt{"Op-amp gain-bandwidth (linear settling — benign in a 1-bit loop)"};
  bt.set_header({"GBW [MHz]", "GBW/fs", "SNR [dB]", "delta [dB]"});
  for (double gbw : {0.05e6, 0.1e6, 0.4e6, 1.5e6, 10e6}) {
    analog::ModulatorConfig mc = nominal;
    mc.opamp1.gbw_hz = gbw;
    mc.opamp2.gbw_hz = gbw;
    const double snr = snr_with(mc);
    bt.add_row({format_double(gbw / 1e6, 2), format_double(gbw / 128e3, 1),
                format_double(snr, 2), format_double(snr - snr_nom, 2)});
  }
  bt.print(std::cout);
  std::cout << "   (incomplete *linear* settling scales signal and feedback charge\n"
               "    equally — no distortion; the dangerous regime is slewing:)\n";

  TextTable st{"Op-amp slew rate (nonlinear settling)"};
  st.set_header({"slew [V/us]", "SNR [dB]", "delta [dB]"});
  for (double sr : {0.05e6, 0.1e6, 0.2e6, 0.5e6, 5e6}) {
    analog::ModulatorConfig mc = nominal;
    mc.opamp1.slew_rate_v_per_s = sr;
    mc.opamp2.slew_rate_v_per_s = sr;
    const double snr = snr_with(mc);
    st.add_row({format_double(sr / 1e6, 2), format_double(snr, 2),
                format_double(snr - snr_nom, 2)});
  }
  st.print(std::cout);

  TextTable ct{"Comparator offset / hysteresis (noise-shaped)"};
  ct.set_header({"offset [mV]", "hysteresis [mV]", "SNR [dB]", "delta [dB]"});
  for (double mv : {0.0, 5.0, 20.0, 50.0}) {
    analog::ModulatorConfig mc = nominal;
    mc.comparator.offset_v = mv * 1e-3;
    mc.comparator.hysteresis_v = mv * 1e-3;
    const double snr = snr_with(mc);
    ct.add_row({format_double(mv, 0), format_double(mv, 0), format_double(snr, 2),
                format_double(snr - snr_nom, 2)});
  }
  ct.print(std::cout);

  TextTable jt{"Clock jitter (15.6 Hz input: slew is tiny)"};
  jt.set_header({"jitter rms [ns]", "SNR [dB]", "delta [dB]"});
  for (double ns : {0.0, 1.0, 10.0, 100.0}) {
    analog::ModulatorConfig mc = nominal;
    mc.clock_jitter_rms_s = ns * 1e-9;
    const double snr = snr_with(mc);
    jt.add_row({format_double(ns, 0), format_double(snr, 2),
                format_double(snr - snr_nom, 2)});
  }
  jt.print(std::cout);

  TextTable lt{"Op-amp flicker noise (corner) with and without CDS"};
  lt.set_header({"corner [kHz]", "SNR, CDS off [dB]", "SNR, CDS 30x [dB]"});
  for (double fc : {0.0, 1e3, 10e3, 50e3}) {
    analog::ModulatorConfig raw = nominal;
    raw.opamp1.flicker_corner_hz = fc;
    raw.opamp2.flicker_corner_hz = fc;
    raw.cds_flicker_rejection = 1.0;
    analog::ModulatorConfig cds = raw;
    cds.cds_flicker_rejection = 30.0;
    lt.add_row({format_double(fc / 1e3, 0), format_double(snr_with(raw), 2),
                format_double(snr_with(cds), 2)});
  }
  lt.print(std::cout);
  std::cout << "   (at this chip's low white floor, flicker only bites at very\n"
               "    high corners; the SC integrator's correlated double sampling\n"
               "    removes even that — why the architecture is 1/f-immune)\n";

  TextTable nt{"Noise sources on/off"};
  nt.set_header({"configuration", "SNR [dB]", "delta [dB]"});
  {
    analog::ModulatorConfig mc = nominal;
    mc.enable_ktc_noise = false;
    nt.add_row({"kT/C disabled", format_double(snr_with(mc), 2),
                format_double(snr_with(mc) - snr_nom, 2)});
  }
  {
    analog::ModulatorConfig mc = nominal;
    mc.opamp1.noise_vrms = 0.0;
    mc.opamp2.noise_vrms = 0.0;
    nt.add_row({"op-amp noise disabled", format_double(snr_with(mc), 2),
                format_double(snr_with(mc) - snr_nom, 2)});
  }
  {
    analog::ModulatorConfig mc = nominal;
    mc.enable_ktc_noise = false;
    mc.enable_settling = false;
    mc.opamp1.noise_vrms = 0.0;
    mc.opamp2.noise_vrms = 0.0;
    mc.ref_noise_vrms = 0.0;
    mc.comparator.noise_vrms = 0.0;
    mc.clock_jitter_rms_s = 0.0;
    nt.add_row({"all analog noise disabled (12-bit + NTF floor)",
                format_double(snr_with(mc), 2), format_double(snr_with(mc) - snr_nom, 2)});
  }
  nt.print(std::cout);

  std::cout << "-> the readout tolerates low op-amp gain, comparator error and\n"
               "   linear settling error (all shaped or gain-like); only slew\n"
               "   limiting distorts, and the operating floor is the 12-bit\n"
               "   output word — the tolerance profile a low-power SC ΔΣ is\n"
               "   chosen for.\n";
}

}  // namespace

int main() {
  run();
  return 0;
}
