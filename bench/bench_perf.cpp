// Microbenchmarks (google-benchmark): simulation throughput of the hot
// paths. Not a paper experiment — this guards the property that makes the
// repo usable: simulating seconds of 128 kHz operation in real time or
// faster on a laptop.
//
// Beyond the console table, the run appends one entry to a BENCH_perf.json
// trajectory file (path overridable via the TONO_BENCH_JSON environment
// variable) so throughput regressions are visible across commits. The
// `derived` block reports the headline ratios: block-mode vs scalar
// throughput and the parallel-sweep scaling factor.
//
// Items are always *modulator clocks* (or input samples) so scalar and
// block benchmarks of the same stage are directly comparable. Trajectory
// entries are schema_version 2: per-benchmark time is `ns_per_item`
// (per-iteration times were meaningless across scalar/block pairs).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <memory>
#include <map>
#include <numbers>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/analog/modulator.hpp"
#include "src/analog/modulator_bank.hpp"
#include "src/common/metrics.hpp"
#include "src/common/simd.hpp"
#include "src/core/pipeline.hpp"
#include "src/core/sweep_runner.hpp"
#include "src/dsp/decimation.hpp"
#include "src/dsp/fft.hpp"
#include "src/fleet/fleet_scheduler.hpp"
#include "src/fleet/hospital_scheduler.hpp"
#include "src/gateway/gateway.hpp"
#include "src/gateway/recorder.hpp"
#include "src/gateway/transport.hpp"
#include "src/mems/transducer.hpp"

namespace {

using namespace tono;

constexpr std::size_t kOsr = 128;  // paper OSR: clocks per output sample

void BM_ModulatorStepVoltage(benchmark::State& state) {
  analog::DeltaSigmaModulator mod{analog::ModulatorConfig{}};
  double v = 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mod.step_voltage(v));
    v = -v;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ModulatorStepVoltage);

void BM_ModulatorStepCapacitive(benchmark::State& state) {
  analog::DeltaSigmaModulator mod{analog::ModulatorConfig{}};
  double c = 100e-15;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mod.step_capacitive(c, 100e-15));
    c = c == 100e-15 ? 101e-15 : 100e-15;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ModulatorStepCapacitive);

void BM_ModulatorStepCapacitiveBlock(benchmark::State& state) {
  analog::DeltaSigmaModulator mod{analog::ModulatorConfig{}};
  std::vector<int> bits(kOsr);
  double c = 100e-15;
  for (auto _ : state) {
    mod.step_capacitive_block(c, 100e-15, bits.data(), bits.size());
    benchmark::DoNotOptimize(bits.data());
    c = c == 100e-15 ? 101e-15 : 100e-15;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kOsr));
}
BENCHMARK(BM_ModulatorStepCapacitiveBlock);

void BM_ModulatorBankBlock(benchmark::State& state) {
  // Arg = lanes. The 4-lane point is the paper's 2×2 array; 8 and 64 are
  // the §4 per-element-converter direction where the SIMD kernels earn
  // their keep. Items are *lane-clocks* (lanes × modulator clocks), so
  // items_per_second is the aggregate conversion rate and the derived
  // modulator_bank_vs_scalar ratio reads as "how many scalar-stepped
  // single modulators one bank is worth". Lane seeds come from the sweep
  // engine's per-trial stream so the bench uses the same decorrelation
  // path as a real sweep; homogeneous configs keep every lane inside the
  // vector packets, which is also the production layout (identical chips).
  const auto lanes = static_cast<std::size_t>(state.range(0));
  core::SweepRunner seeder{{.threads = 1, .base_seed = 11, .stream_name = "bank-bench"}};
  std::vector<analog::ModulatorConfig> configs(lanes);
  for (std::size_t k = 0; k < lanes; ++k) configs[k].seed = seeder.trial_seed(k);
  analog::ModulatorBank bank{configs};
  std::vector<double> c_sense(lanes);
  for (std::size_t k = 0; k < lanes; ++k) {
    c_sense[k] = (95.0 + static_cast<double>((k * 7) % 18)) * 1e-15;
  }
  const std::vector<double> c_ref(lanes, 100e-15);
  std::vector<int> bits(lanes * kOsr);
  for (auto _ : state) {
    bank.step_capacitive_block(c_sense.data(), c_ref.data(), bits.data(), kOsr);
    benchmark::DoNotOptimize(bits.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lanes * kOsr));
  state.counters["simd_width"] = static_cast<double>(bank.simd_width());
}
BENCHMARK(BM_ModulatorBankBlock)->Arg(4)->Arg(8)->Arg(64);

void BM_ArrayAcquisitionFrame(benchmark::State& state) {
  // Full parallel readout: one 2×2 image (4 lanes × kOsr clocks + 4
  // decimation chains) per iteration. Items are lane-clocks, comparable to
  // BM_ModulatorBankBlock; the gap between the two is the per-lane
  // decimation + field-evaluation overhead.
  core::ArrayAcquisition array{core::ChipConfig::paper_chip()};
  std::vector<dsp::DecimatedSample> out(array.size());
  double t = 0.0;
  const core::ContactField field = [&t](double, double, double) {
    return 10000.0 + 2000.0 * std::sin(2.0 * std::numbers::pi * 1.2 * t);
  };
  for (auto _ : state) {
    array.acquire_frame(field, out.data());
    benchmark::DoNotOptimize(out.data());
    t += static_cast<double>(kOsr) / 128000.0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(array.size() * kOsr));
}
BENCHMARK(BM_ArrayAcquisitionFrame);

void BM_DecimationPush(benchmark::State& state) {
  dsp::DecimationChain chain{dsp::DecimationConfig{}};
  int bit = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain.push(bit));
    bit = -bit;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DecimationPush);

void BM_DecimationPushFrame(benchmark::State& state) {
  dsp::DecimationChain chain{dsp::DecimationConfig{}};
  std::vector<int> bits(kOsr);
  for (std::size_t i = 0; i < bits.size(); ++i) bits[i] = i % 3 == 0 ? -1 : 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain.push_frame(bits));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kOsr));
}
BENCHMARK(BM_DecimationPushFrame);

void BM_CapacitanceExactIntegral(benchmark::State& state) {
  mems::PressureTransducer t{mems::TransducerConfig{}};
  double p = 1000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.capacitance(p));
    p = p < 20e3 ? p + 13.0 : 1000.0;
  }
  // One evaluation per iteration; without this the trajectory entry records
  // items_per_second: 0 and the regression guard cannot cover the exact path.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CapacitanceExactIntegral);

void BM_CapacitanceLut(benchmark::State& state) {
  core::SensorArray arr{core::ChipConfig::paper_chip()};
  double p = 1000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(arr.element(0).capacitance(p));
    p = p < 20e3 ? p + 13.0 : 1000.0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CapacitanceLut);

void BM_FullPipelineClock(benchmark::State& state) {
  core::AcquisitionPipeline pipe{core::ChipConfig::paper_chip()};
  double t = 0.0;
  for (auto _ : state) {
    const double p = 10000.0 + 2000.0 * std::sin(2.0 * std::numbers::pi * 1.2 * t);
    benchmark::DoNotOptimize(pipe.clock(p));
    t += 1.0 / 128000.0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["realtime_x"] = benchmark::Counter(
      static_cast<double>(state.iterations()) / 128000.0, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullPipelineClock);

void BM_FullPipelineClockBlock(benchmark::State& state) {
  // One iteration = one output frame = kOsr modulator clocks; items are
  // clocks so the rate is directly comparable to BM_FullPipelineClock.
  core::AcquisitionPipeline pipe{core::ChipConfig::paper_chip()};
  double t = 0.0;
  for (auto _ : state) {
    const double p = 10000.0 + 2000.0 * std::sin(2.0 * std::numbers::pi * 1.2 * t);
    benchmark::DoNotOptimize(pipe.clock_block(p));
    t += static_cast<double>(kOsr) / 128000.0;
  }
  const auto clocks =
      static_cast<std::int64_t>(state.iterations()) * static_cast<std::int64_t>(kOsr);
  state.SetItemsProcessed(clocks);
  state.counters["realtime_x"] = benchmark::Counter(
      static_cast<double>(clocks) / 128000.0, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullPipelineClockBlock);

// One sweep trial: a short seeded acquisition, the unit of work the parallel
// scaling benchmarks fan out.
std::int64_t sweep_trial(Rng& rng) {
  core::ChipConfig chip = core::ChipConfig::paper_chip();
  chip.modulator.seed = rng.next_u64();
  core::AcquisitionPipeline pipe{chip};
  const auto samples =
      pipe.acquire_uniform_block([](double) { return 9000.0; }, 10);
  std::int64_t sum = 0;
  for (const auto& s : samples) sum += s.code;
  return sum;
}

void BM_SweepTrials(benchmark::State& state) {
  // Arg = worker threads. Items are trials; compare items_per_second across
  // thread counts for the scaling factor. Results are bit-identical across
  // thread counts (tested in test_sweep_runner.cpp), so this measures pure
  // scheduling overhead/speedup.
  core::SweepRunner runner{{.threads = static_cast<std::size_t>(state.range(0)),
                            .base_seed = 11,
                            .stream_name = "bench"}};
  constexpr std::size_t kTrials = 16;
  for (auto _ : state) {
    auto out = runner.run(kTrials, [](std::size_t, Rng& rng) { return sweep_trial(rng); });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTrials));
}
BENCHMARK(BM_SweepTrials)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// A pre-admitted ward at steady state, reused across iterations so the
// one-time admission cost (localization-free cuff calibration per session)
// stays out of the timed region. Sessions keep streaming across iterations —
// exactly the serving loop's steady state.
struct FleetFixture {
  fleet::WardAggregator ward;
  std::unique_ptr<fleet::FleetScheduler> scheduler;

  explicit FleetFixture(std::size_t n_sessions) {
    fleet::FleetConfig config;  // threads = 0: hardware concurrency
    config.base_seed = 11;
    scheduler = std::make_unique<fleet::FleetScheduler>(config, ward);
    for (std::size_t i = 0; i < n_sessions; ++i) {
      (void)scheduler->admit(fleet::SessionConfig{});
    }
    (void)scheduler->step_all();  // admission + calibration, untimed
  }
};

FleetFixture& fleet_fixture(std::size_t n_sessions) {
  static std::map<std::size_t, std::unique_ptr<FleetFixture>> cache;
  auto& slot = cache[n_sessions];
  if (!slot) slot = std::make_unique<FleetFixture>(n_sessions);
  return *slot;
}

void BM_FleetSteadyState(benchmark::State& state) {
  // Arg = admitted sessions. One iteration = one scheduler batch (every
  // session advances frames_per_step output frames, ward drained). Items
  // are output codes across the whole ward, so items_per_second at
  // different Args gives the fleet scaling factor directly, and
  // items_per_second / 1 kHz is how many real-time patients this host
  // serves at that ward size.
  auto& fixture = fleet_fixture(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.scheduler->step_all());
  }
  const auto codes = static_cast<std::int64_t>(state.iterations()) *
                     state.range(0) *
                     static_cast<std::int64_t>(fixture.scheduler->config().frames_per_step);
  state.SetItemsProcessed(codes);
  state.counters["realtime_sessions"] = benchmark::Counter(
      static_cast<double>(codes) / 1000.0, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FleetSteadyState)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->UseRealTime();

// A pre-admitted hospital at steady state: sessions split across shards,
// each shard on its own driver thread with a serial scheduler
// (threads_per_shard = 1), so the scaling factor across shard counts
// isolates exactly what sharding buys. Cached like the fleet fixture —
// admission (cuff calibration per session) stays out of the timed region.
struct HospitalFixture {
  std::unique_ptr<fleet::HospitalScheduler> hospital;
  double cursor_s{0.0};

  HospitalFixture(std::size_t n_sessions, std::size_t shards) {
    fleet::HospitalConfig config;
    config.shards = shards;
    config.threads_per_shard = 1;  // shard drivers are the parallelism
    config.base_seed = 11;
    hospital = std::make_unique<fleet::HospitalScheduler>(config);
    for (std::size_t i = 0; i < n_sessions; ++i) {
      (void)hospital->admit(fleet::SessionConfig{});
    }
    hospital->run(cursor_s += 0.064);  // admission + calibration, untimed
  }
};

HospitalFixture& hospital_fixture(std::size_t n_sessions, std::size_t shards) {
  static std::map<std::pair<std::size_t, std::size_t>,
                  std::unique_ptr<HospitalFixture>> cache;
  auto& slot = cache[{n_sessions, shards}];
  if (!slot) slot = std::make_unique<HospitalFixture>(n_sessions, shards);
  return *slot;
}

void BM_HospitalSteadyState(benchmark::State& state) {
  // Args = (admitted sessions, shards). One iteration = one batch of stream
  // time hospital-wide (every session advances frames_per_step frames,
  // wards drained, shards epoch-synchronized). Items are output codes, so
  // items_per_second across shard counts is the sharding speedup and
  // items_per_second / 1 kHz is how many real-time patients this host
  // serves at that hospital size.
  auto& fixture = hospital_fixture(static_cast<std::size_t>(state.range(0)),
                                   static_cast<std::size_t>(state.range(1)));
  const double step_s =
      static_cast<double>(fixture.hospital->config().frames_per_step) / 1000.0;
  for (auto _ : state) {
    fixture.cursor_s += step_s;
    fixture.hospital->run(fixture.cursor_s);
  }
  const auto codes = static_cast<std::int64_t>(state.iterations()) *
                     state.range(0) *
                     static_cast<std::int64_t>(
                         fixture.hospital->config().frames_per_step);
  state.SetItemsProcessed(codes);
  state.counters["realtime_sessions"] = benchmark::Counter(
      static_cast<double>(codes) / 1000.0, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HospitalSteadyState)
    ->Args({64, 1})
    ->Args({64, 4})
    ->Args({256, 4})
    ->Args({1024, 4})
    ->UseRealTime();

// The gateway wire at steady state: N channels multiplexed over one
// loopback transport, one batch (frames_per_step codes per channel) muxed,
// shipped and demuxed per iteration. Items are codes through the wire, so
// items_per_second across Args is the gateway scaling factor and
// items_per_second / 1 kHz is how many real-time 1 kS/s session streams
// this host can carry per gateway.
struct GatewayFixture {
  gateway::LoopbackTransport wire{1 << 22};
  std::unique_ptr<gateway::GatewayMux> mux;
  std::unique_ptr<gateway::GatewayDemux> demux;
  std::vector<std::int16_t> batch;
  std::uint64_t delivered{0};

  explicit GatewayFixture(std::size_t channels) {
    mux = std::make_unique<gateway::GatewayMux>(wire);
    demux = std::make_unique<gateway::GatewayDemux>(wire);
    for (std::uint32_t c = 0; c < channels; ++c) {
      mux->open_channel(c);
      demux->open_channel(c);
    }
    demux->on_codes([this](std::uint32_t, std::span<const std::int16_t> codes) {
      delivered += codes.size();
    });
    batch.resize(64);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch[i] = static_cast<std::int16_t>((i * 37) % 2048);
    }
  }
};

GatewayFixture& gateway_fixture(std::size_t channels) {
  static std::map<std::size_t, std::unique_ptr<GatewayFixture>> cache;
  auto& slot = cache[channels];
  if (!slot) slot = std::make_unique<GatewayFixture>(channels);
  return *slot;
}

void BM_GatewayThroughput(benchmark::State& state) {
  auto& fixture = gateway_fixture(static_cast<std::size_t>(state.range(0)));
  const std::uint32_t channels = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    for (std::uint32_t c = 0; c < channels; ++c) fixture.mux->send(c, fixture.batch);
    benchmark::DoNotOptimize(fixture.demux->pump());
  }
  const auto codes = static_cast<std::int64_t>(state.iterations()) *
                     state.range(0) * static_cast<std::int64_t>(fixture.batch.size());
  state.SetItemsProcessed(codes);
  state.counters["realtime_sessions"] = benchmark::Counter(
      static_cast<double>(codes) / 1000.0, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GatewayThroughput)->Arg(1)->Arg(16)->Arg(64);

// Time-compressed replay of a recorded session through the gateway: one
// iteration streams the whole record file back (original frame sequence
// numbers preserved) and pumps it through the demux. Items are codes, so
// items_per_second / 1 kS/s is the replay speedup over the paced hardware
// rate — the derived gateway_replay_speedup entry.
void BM_GatewayReplay(benchmark::State& state) {
  const std::string dir = (std::filesystem::temp_directory_path() /
                           "tono_bench_replay")
                              .string();
  constexpr std::size_t kFrames = 512;
  constexpr std::size_t kBatch = 64;
  {
    std::filesystem::remove_all(dir);
    gateway::SessionRecorder rec{dir};
    rec.open_session(0);
    core::FrameEncoder enc;
    std::vector<std::int16_t> codes(kBatch);
    for (std::size_t i = 0; i < kFrames; ++i) {
      for (std::size_t k = 0; k < codes.size(); ++k) {
        codes[k] = static_cast<std::int16_t>((i * 131 + k * 17) % 2048);
      }
      rec.record(0, enc.encode(codes), static_cast<std::uint16_t>(codes.size()));
    }
  }
  gateway::LoopbackTransport wire{1 << 22};
  gateway::GatewayMux mux{wire};
  gateway::GatewayDemux demux{wire};
  mux.open_channel(0);
  demux.open_channel(0);
  std::uint64_t delivered = 0;
  demux.on_codes([&delivered](std::uint32_t, std::span<const std::int16_t> codes) {
    delivered += codes.size();
  });
  std::vector<std::uint8_t> frame;
  std::uint16_t n_codes = 0;
  for (auto _ : state) {
    gateway::SessionReplayer replay{dir, 0};
    while (replay.next(frame, n_codes)) {
      mux.send_encoded(0, frame, n_codes);
      (void)demux.pump();
    }
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kFrames * kBatch));
}
BENCHMARK(BM_GatewayReplay);

void BM_Fft8k(benchmark::State& state) {
  std::vector<dsp::Complex> x(8192);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = dsp::Complex{std::sin(0.01 * static_cast<double>(i)), 0.0};
  }
  // Scratch is allocated once; each iteration pays only the copy + the
  // transform, not a fresh 8k-complex allocation.
  std::vector<dsp::Complex> scratch(x.size());
  for (auto _ : state) {
    std::copy(x.begin(), x.end(), scratch.begin());
    dsp::fft_inplace(scratch);
    benchmark::DoNotOptimize(scratch.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(x.size()));
}
BENCHMARK(BM_Fft8k);

// ---------------------------------------------------------------------------
// Trajectory output: capture finished runs, then append one JSON entry.

struct CapturedRun {
  double items_per_second{0.0};
  double ns_per_item{0.0};
};

class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      CapturedRun c;
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) c.items_per_second = it->second.value;
      // Schema v2: time is always normalized per *item* (one modulator
      // clock / input sample / trial), never per benchmark iteration —
      // block benchmarks process kOsr (or lanes × kOsr) items per
      // iteration, so per-iteration times were not comparable to their
      // scalar counterparts. Benchmarks that don't set items default to
      // one item per iteration.
      const double iters = run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      if (c.items_per_second > 0.0) {
        c.ns_per_item = 1e9 / c.items_per_second;
      } else {
        c.ns_per_item = run.real_accumulated_time * 1e9 / iters;
      }
      results_[run.benchmark_name()] = c;
    }
    ConsoleReporter::ReportRuns(runs);
  }

  [[nodiscard]] const std::map<std::string, CapturedRun>& results() const {
    return results_;
  }

 private:
  std::map<std::string, CapturedRun> results_;
};

double rate_of(const std::map<std::string, CapturedRun>& r, const std::string& name) {
  const auto it = r.find(name);
  return it == r.end() ? 0.0 : it->second.items_per_second;
}

double ratio(double num, double den) { return den > 0.0 ? num / den : 0.0; }

std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

std::string make_entry_json(const std::map<std::string, CapturedRun>& results) {
  std::ostringstream os;
  os.precision(6);
  os << "  {\n";
  os << "    \"schema_version\": 3,\n";
  os << "    \"timestamp\": \"" << utc_timestamp() << "\",\n";
  os << "    \"hardware_threads\": " << std::thread::hardware_concurrency() << ",\n";
  // Schema v3: record what the ModulatorBank actually dispatched to, so a
  // trajectory regression can be told apart from a dispatch change (e.g. a
  // CI runner without AVX2, or TONO_SIMD forced off).
  const char* simd_env = std::getenv("TONO_SIMD");
  os << "    \"simd\": {\"dispatch\": \"" << simd::level_name(simd::active_level())
     << "\", \"width\": " << simd::level_width(simd::active_level())
     << ", \"compiled\": \"" << simd::level_name(simd::compiled_level())
     << "\", \"cpu_features\": \"" << simd::cpu_features()
     << "\", \"env\": \"" << (simd_env != nullptr ? simd_env : "") << "\"},\n";
  os << "    \"benchmarks\": {\n";
  bool first = true;
  for (const auto& [name, run] : results) {
    if (!first) os << ",\n";
    first = false;
    os << "      \"" << name << "\": {\"items_per_second\": " << run.items_per_second
       << ", \"ns_per_item\": " << run.ns_per_item << "}";
  }
  os << "\n    },\n";
  const double scalar_pipe = rate_of(results, "BM_FullPipelineClock");
  const double block_pipe = rate_of(results, "BM_FullPipelineClockBlock");
  const double scalar_mod = rate_of(results, "BM_ModulatorStepCapacitive");
  const double block_mod = rate_of(results, "BM_ModulatorStepCapacitiveBlock");
  const double bank_mod = rate_of(results, "BM_ModulatorBankBlock/8");
  const double bank_wide = rate_of(results, "BM_ModulatorBankBlock/64");
  const double scalar_dec = rate_of(results, "BM_DecimationPush");
  const double frame_dec = rate_of(results, "BM_DecimationPushFrame");
  const double sweep1 = rate_of(results, "BM_SweepTrials/1/real_time");
  const double sweep2 = rate_of(results, "BM_SweepTrials/2/real_time");
  const double sweep4 = rate_of(results, "BM_SweepTrials/4/real_time");
  const double fleet1 = rate_of(results, "BM_FleetSteadyState/1/real_time");
  const double fleet16 = rate_of(results, "BM_FleetSteadyState/16/real_time");
  const double fleet64 = rate_of(results, "BM_FleetSteadyState/64/real_time");
  const double hospital64_1 = rate_of(results, "BM_HospitalSteadyState/64/1/real_time");
  const double hospital64_4 = rate_of(results, "BM_HospitalSteadyState/64/4/real_time");
  const double hospital256 = rate_of(results, "BM_HospitalSteadyState/256/4/real_time");
  const double hospital1024 = rate_of(results, "BM_HospitalSteadyState/1024/4/real_time");
  const double gateway1 = rate_of(results, "BM_GatewayThroughput/1");
  const double gateway64 = rate_of(results, "BM_GatewayThroughput/64");
  const double gateway_replay = rate_of(results, "BM_GatewayReplay");
  os << "    \"derived\": {\n";
  os << "      \"pipeline_block_vs_scalar\": " << ratio(block_pipe, scalar_pipe) << ",\n";
  os << "      \"modulator_block_vs_scalar\": " << ratio(block_mod, scalar_mod) << ",\n";
  os << "      \"modulator_bank_vs_scalar\": " << ratio(bank_mod, scalar_mod) << ",\n";
  os << "      \"modulator_bank_wide_vs_scalar\": " << ratio(bank_wide, scalar_mod)
     << ",\n";
  os << "      \"decimation_frame_vs_push\": " << ratio(frame_dec, scalar_dec) << ",\n";
  os << "      \"pipeline_block_realtime_x\": " << block_pipe / 128000.0 << ",\n";
  os << "      \"sweep_speedup_2t\": " << ratio(sweep2, sweep1) << ",\n";
  os << "      \"sweep_speedup_4t\": " << ratio(sweep4, sweep1) << ",\n";
  os << "      \"fleet_scaling_16_vs_1\": " << ratio(fleet16, fleet1) << ",\n";
  os << "      \"fleet_realtime_sessions_64\": " << fleet64 / 1000.0 << ",\n";
  os << "      \"hospital_scaling_4shards_vs_1\": " << ratio(hospital64_4, hospital64_1)
     << ",\n";
  os << "      \"hospital_scaling_256_vs_64\": " << ratio(hospital256, hospital64_4)
     << ",\n";
  os << "      \"hospital_realtime_sessions_1024\": " << hospital1024 / 1000.0 << ",\n";
  os << "      \"gateway_scaling_64_vs_1\": " << ratio(gateway64, gateway1) << ",\n";
  os << "      \"gateway_realtime_sessions_64\": " << gateway64 / 1000.0 << ",\n";
  os << "      \"gateway_replay_speedup\": " << gateway_replay / 1000.0 << "\n";
  os << "    }\n";
  os << "  }";
  return os.str();
}

/// Appends `entry` to the JSON array in `path` (created if missing), keeping
/// the file a valid JSON document after every run.
void append_trajectory(const std::string& path, const std::string& entry) {
  std::string existing;
  {
    std::ifstream in{path};
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      existing = buf.str();
    }
  }
  std::ofstream out{path, std::ios::trunc};
  if (!out) return;
  const auto close_bracket = existing.find_last_of(']');
  if (close_bracket == std::string::npos) {
    out << "[\n" << entry << "\n]\n";
    return;
  }
  // Keep everything up to the final ']' and splice the new entry in front.
  std::string head = existing.substr(0, close_bracket);
  while (!head.empty() && (head.back() == '\n' || head.back() == ' ')) head.pop_back();
  const bool empty_array = head.find('{') == std::string::npos;
  out << head << (empty_array ? "\n" : ",\n") << entry << "\n]\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  const char* path = std::getenv("TONO_BENCH_JSON");
  append_trajectory(path != nullptr ? path : "BENCH_perf.json",
                    make_entry_json(reporter.results()));
  // Registry snapshot alongside the trajectory: the benchmarks above drove
  // the instrumented hot paths, so this doubles as an end-to-end check that
  // the counters move under load.
  metrics::register_standard_instruments();
  const char* mpath = std::getenv("TONO_BENCH_METRICS");
  metrics::Registry::global().write_jsonl_file(
      mpath != nullptr ? mpath : "BENCH_perf.metrics.jsonl");
  return 0;
}
