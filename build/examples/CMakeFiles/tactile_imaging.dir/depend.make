# Empty dependencies file for tactile_imaging.
# This may be replaced when dependencies are built.
