#include "src/bio/pulse_generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/common/checkpoint.hpp"
#include "src/common/units.hpp"

namespace tono::bio {

ArterialPulseGenerator::ArterialPulseGenerator(const PulseConfig& config)
    : config_(config), beat_(config.morphology), rng_(config.seed) {
  if (config_.systolic_mmhg <= config_.diastolic_mmhg) {
    throw std::invalid_argument{"ArterialPulseGenerator: systolic must exceed diastolic"};
  }
  if (config_.heart_rate_bpm <= 20.0 || config_.heart_rate_bpm > 250.0) {
    throw std::invalid_argument{"ArterialPulseGenerator: implausible heart rate"};
  }
  start_new_beat(0.0);
}

void ArterialPulseGenerator::start_new_beat(double onset_s) {
  // Nominal interval modulated by Mayer wave, RSA and white jitter. All
  // slow-wave phases are evaluated at the beat's scheduled onset (not the
  // sampling clock), so a large dt that spans several beats produces the
  // same beat train as fine-grained stepping would.
  const double nominal = 60.0 / config_.heart_rate_bpm;
  const double mayer =
      config_.mayer_depth * std::sin(units::two_pi * config_.mayer_freq_hz * onset_s);
  const double rsa =
      config_.rsa_depth * std::sin(units::two_pi * config_.respiration_freq_hz * onset_s);
  const double jitter = config_.hrv_jitter * rng_.gaussian();
  double interval = nominal * (1.0 + mayer + rsa + jitter);
  // AF-like rhythm: large uniform interval spread on top of the modulation.
  if (config_.af_irregularity > 0.0) {
    interval *= 1.0 + config_.af_irregularity * rng_.uniform(-1.0, 1.0);
  }
  interval = std::max(interval, 0.3 * nominal);
  const double prev_interval = beat_interval_s_;
  beat_interval_s_ = interval;
  beat_start_s_ = onset_s;

  // Per-beat pressure setpoints: respiration modulates pulse pressure;
  // drift moves both endpoints.
  const double resp_pp =
      1.0 + config_.respiration_pp_depth *
                std::sin(units::two_pi * config_.respiration_freq_hz * onset_s);
  double pp = (config_.systolic_mmhg - config_.diastolic_mmhg) * resp_pp;
  if (config_.af_irregularity > 0.0) {
    // Short preceding interval → reduced ventricular filling → weaker beat
    // (the classic AF pulse-deficit mechanism).
    const double filling = std::clamp(prev_interval / nominal, 0.5, 1.5);
    pp *= 0.4 + 0.6 * filling;
  }
  beat_dia_mmhg_ = config_.diastolic_mmhg + drift_mmhg_;
  beat_sys_mmhg_ = beat_dia_mmhg_ + pp;

  cur_min_ = 1e9;
  cur_max_ = -1e9;
  cur_sum_ = 0.0;
  cur_n_ = 0;
}

void ArterialPulseGenerator::close_out_beat() {
  if (cur_n_ > 0) {
    push_truth(BeatTruth{beat_start_s_, beat_interval_s_, cur_max_, cur_min_,
                         cur_sum_ / static_cast<double>(cur_n_)});
  } else {
    // No samples landed inside this beat (dt spanned it entirely). It still
    // happened: record the setpoint truth so per-beat ground truth stays
    // contiguous instead of silently merging skipped beats into neighbours.
    const double pp = beat_sys_mmhg_ - beat_dia_mmhg_;
    push_truth(BeatTruth{beat_start_s_, beat_interval_s_, beat_sys_mmhg_, beat_dia_mmhg_,
                         beat_dia_mmhg_ + pp / 3.0});
  }
}

void ArterialPulseGenerator::push_truth(const BeatTruth& beat) {
  ++beats_completed_;
  truth_sum_sys_ += beat.systolic_mmhg;
  truth_sum_dia_ += beat.diastolic_mmhg;
  truth_.push_back(beat);
  if (config_.truth_capacity > 0) {
    // Amortized trim: let the log overshoot by 25% before one bulk erase,
    // so the steady-state cost is O(1) per beat, not O(capacity).
    const std::size_t cap = config_.truth_capacity;
    if (truth_.size() > cap + cap / 4) {
      const std::size_t excess = truth_.size() - cap;
      truth_.erase(truth_.begin(), truth_.begin() + static_cast<std::ptrdiff_t>(excess));
      truth_dropped_ += excess;
    }
  }
}

std::vector<BeatTruth> ArterialPulseGenerator::drain_truth() {
  std::vector<BeatTruth> out;
  out.swap(truth_);
  return out;
}

double ArterialPulseGenerator::sample(double dt_s) {
  if (dt_s <= 0.0) throw std::invalid_argument{"ArterialPulseGenerator: dt must be > 0"};
  time_s_ += dt_s;

  // Drift as a random walk, scaled with sqrt(dt).
  drift_mmhg_ += config_.drift_mmhg_per_sqrt_s * std::sqrt(dt_s) * rng_.gaussian();

  // Close out *every* beat the step crossed — a dt spanning several beat
  // intervals must emit each beat's truth, not merge them into one.
  while (time_s_ - beat_start_s_ >= beat_interval_s_) {
    close_out_beat();
    start_new_beat(beat_start_s_ + beat_interval_s_);
  }

  const double phase = (time_s_ - beat_start_s_) / beat_interval_s_;
  const double shape = beat_.value(phase);
  const double resp_baseline =
      config_.respiration_baseline_mmhg *
      std::sin(units::two_pi * config_.respiration_freq_hz * time_s_);
  const double p =
      beat_dia_mmhg_ + (beat_sys_mmhg_ - beat_dia_mmhg_) * shape + resp_baseline;

  cur_min_ = std::min(cur_min_, p);
  cur_max_ = std::max(cur_max_, p);
  cur_sum_ += p;
  ++cur_n_;
  return p;
}

std::vector<double> ArterialPulseGenerator::generate(double sample_rate_hz, std::size_t n) {
  if (sample_rate_hz <= 0.0) {
    throw std::invalid_argument{"ArterialPulseGenerator: sample rate must be > 0"};
  }
  std::vector<double> out;
  out.reserve(n);
  const double dt = 1.0 / sample_rate_hz;
  for (std::size_t i = 0; i < n; ++i) out.push_back(sample(dt));
  return out;
}

void ArterialPulseGenerator::set_targets(double systolic_mmhg, double diastolic_mmhg,
                                         double heart_rate_bpm) {
  if (systolic_mmhg <= diastolic_mmhg) {
    throw std::invalid_argument{"set_targets: systolic must exceed diastolic"};
  }
  if (heart_rate_bpm <= 20.0 || heart_rate_bpm > 250.0) {
    throw std::invalid_argument{"set_targets: implausible heart rate"};
  }
  config_.systolic_mmhg = systolic_mmhg;
  config_.diastolic_mmhg = diastolic_mmhg;
  config_.heart_rate_bpm = heart_rate_bpm;
}

PulseConfig PatientPresets::normotensive() { return PulseConfig{}; }

PulseConfig PatientPresets::hypertensive() {
  PulseConfig c;
  c.systolic_mmhg = 165.0;
  c.diastolic_mmhg = 102.0;
  c.heart_rate_bpm = 80.0;
  c.seed = 11;
  return c;
}

PulseConfig PatientPresets::hypotensive() {
  PulseConfig c;
  c.systolic_mmhg = 95.0;
  c.diastolic_mmhg = 60.0;
  c.heart_rate_bpm = 64.0;
  c.seed = 12;
  return c;
}

PulseConfig PatientPresets::tachycardic() {
  PulseConfig c;
  c.systolic_mmhg = 118.0;
  c.diastolic_mmhg = 78.0;
  c.heart_rate_bpm = 125.0;
  c.seed = 13;
  return c;
}

PulseConfig PatientPresets::elderly_stiff() {
  PulseConfig c;
  c.systolic_mmhg = 150.0;
  c.diastolic_mmhg = 85.0;
  c.heart_rate_bpm = 68.0;
  // Stiff arteries reflect early and strongly: boost the augmentation lobe.
  c.morphology.lobes[1].amplitude = 0.62;
  c.morphology.lobes[1].center_phase = 0.27;
  c.seed = 14;
  return c;
}

PulseConfig PatientPresets::atrial_fibrillation() {
  PulseConfig c;
  c.systolic_mmhg = 130.0;
  c.diastolic_mmhg = 84.0;
  c.heart_rate_bpm = 95.0;
  c.af_irregularity = 0.25;
  c.hrv_jitter = 0.08;
  c.seed = 15;
  return c;
}

void ArterialPulseGenerator::serialize(CheckpointWriter& out) const {
  out.section("pulse_generator");
  out.f64(config_.systolic_mmhg);  // set_targets can retarget these three
  out.f64(config_.diastolic_mmhg);
  out.f64(config_.heart_rate_bpm);
  rng_.serialize(out);
  out.f64(time_s_);
  out.f64(beat_start_s_);
  out.f64(beat_interval_s_);
  out.f64(beat_sys_mmhg_);
  out.f64(beat_dia_mmhg_);
  out.f64(drift_mmhg_);
  out.f64(cur_min_);
  out.f64(cur_max_);
  out.f64(cur_sum_);
  out.size(cur_n_);
  out.u64(beats_completed_);
  out.u64(truth_dropped_);
  out.f64(truth_sum_sys_);
  out.f64(truth_sum_dia_);
  out.size(truth_.size());
  for (const auto& b : truth_) {
    out.f64(b.onset_s);
    out.f64(b.interval_s);
    out.f64(b.systolic_mmhg);
    out.f64(b.diastolic_mmhg);
    out.f64(b.map_mmhg);
  }
}

void ArterialPulseGenerator::restore(CheckpointReader& in) {
  in.section("pulse_generator");
  config_.systolic_mmhg = in.f64();
  config_.diastolic_mmhg = in.f64();
  config_.heart_rate_bpm = in.f64();
  rng_.restore(in);
  time_s_ = in.f64();
  beat_start_s_ = in.f64();
  beat_interval_s_ = in.f64();
  beat_sys_mmhg_ = in.f64();
  beat_dia_mmhg_ = in.f64();
  drift_mmhg_ = in.f64();
  cur_min_ = in.f64();
  cur_max_ = in.f64();
  cur_sum_ = in.f64();
  cur_n_ = in.size();
  beats_completed_ = in.u64();
  truth_dropped_ = in.u64();
  truth_sum_sys_ = in.f64();
  truth_sum_dia_ = in.f64();
  truth_.resize(in.size());
  for (auto& b : truth_) {
    b.onset_s = in.f64();
    b.interval_s = in.f64();
    b.systolic_mmhg = in.f64();
    b.diastolic_mmhg = in.f64();
    b.map_mmhg = in.f64();
  }
}

double ArterialPulseGenerator::mean_systolic_mmhg() const noexcept {
  if (beats_completed_ == 0) return config_.systolic_mmhg;
  return truth_sum_sys_ / static_cast<double>(beats_completed_);
}

double ArterialPulseGenerator::mean_diastolic_mmhg() const noexcept {
  if (beats_completed_ == 0) return config_.diastolic_mmhg;
  return truth_sum_dia_ / static_cast<double>(beats_completed_);
}

}  // namespace tono::bio
