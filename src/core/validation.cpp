#include "src/core/validation.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <ostream>

#include "src/common/metrics.hpp"

namespace tono::core {
namespace {

// Same escaping as the ward snapshot export (control chars must survive).
std::string json_escape(const std::string& s) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: {
        const auto u = static_cast<unsigned char>(c);
        if (u >= 0x20) {
          out += c;
        } else {
          out += "\\u00";
          out += kHex[u >> 4];
          out += kHex[u & 0xF];
        }
      }
    }
  }
  return out;
}

void export_error_block(std::ostream& os, const char* key, const ErrorAccumulator& acc,
                        std::size_t min_pairs) {
  const BlandAltman ba = bland_altman(acc);
  os << ",\"" << key << "\":{\"n\":" << acc.count() << ",\"bias_mmhg\":" << ba.bias_mmhg
     << ",\"sd_mmhg\":" << ba.sd_mmhg << ",\"loa_low_mmhg\":" << ba.loa_low_mmhg
     << ",\"loa_high_mmhg\":" << ba.loa_high_mmhg
     << ",\"mae_mmhg\":" << acc.mean_absolute_error_mmhg()
     << ",\"within_5\":" << acc.within_5_mmhg() << ",\"within_10\":" << acc.within_10_mmhg()
     << ",\"within_15\":" << acc.within_15_mmhg() << ",\"aami\":\""
     << to_string(aami_verdict(acc, min_pairs)) << "\",\"bhs\":\""
     << to_string(bhs_grade(acc, min_pairs)) << "\"}";
}

}  // namespace

void ErrorAccumulator::add(double estimate_mmhg, double truth_mmhg) noexcept {
  const double e = estimate_mmhg - truth_mmhg;
  const double a = std::abs(e);
  diff_.add(e);
  abs_.add(a);
  if (a <= 5.0) ++within5_;
  if (a <= 10.0) ++within10_;
  if (a <= 15.0) ++within15_;
}

void ErrorAccumulator::merge(const ErrorAccumulator& other) noexcept {
  diff_.merge(other.diff_);
  abs_.merge(other.abs_);
  within5_ += other.within5_;
  within10_ += other.within10_;
  within15_ += other.within15_;
}

double ErrorAccumulator::error_sd_mmhg() const noexcept {
  return std::sqrt(diff_.sample_variance());
}

double ErrorAccumulator::within_5_mmhg() const noexcept {
  const std::size_t n = count();
  return n > 0 ? static_cast<double>(within5_) / static_cast<double>(n) : 0.0;
}

double ErrorAccumulator::within_10_mmhg() const noexcept {
  const std::size_t n = count();
  return n > 0 ? static_cast<double>(within10_) / static_cast<double>(n) : 0.0;
}

double ErrorAccumulator::within_15_mmhg() const noexcept {
  const std::size_t n = count();
  return n > 0 ? static_cast<double>(within15_) / static_cast<double>(n) : 0.0;
}

BlandAltman bland_altman(const ErrorAccumulator& acc) noexcept {
  BlandAltman ba;
  ba.n = acc.count();
  ba.bias_mmhg = acc.mean_error_mmhg();
  ba.sd_mmhg = acc.error_sd_mmhg();
  ba.loa_low_mmhg = ba.bias_mmhg - 1.96 * ba.sd_mmhg;
  ba.loa_high_mmhg = ba.bias_mmhg + 1.96 * ba.sd_mmhg;
  return ba;
}

const char* to_string(AamiVerdict v) noexcept {
  switch (v) {
    case AamiVerdict::kPass: return "pass";
    case AamiVerdict::kFail: return "fail";
    case AamiVerdict::kInsufficientData: return "insufficient-data";
  }
  return "unknown";
}

const char* to_string(BhsGrade g) noexcept {
  switch (g) {
    case BhsGrade::kA: return "A";
    case BhsGrade::kB: return "B";
    case BhsGrade::kC: return "C";
    case BhsGrade::kD: return "D";
    case BhsGrade::kInsufficientData: return "insufficient-data";
  }
  return "unknown";
}

AamiVerdict aami_verdict(const ErrorAccumulator& acc, std::size_t min_pairs) {
  if (acc.count() < min_pairs) return AamiVerdict::kInsufficientData;
  const bool pass = std::abs(acc.mean_error_mmhg()) <= 5.0 && acc.error_sd_mmhg() <= 8.0;
  return pass ? AamiVerdict::kPass : AamiVerdict::kFail;
}

BhsGrade bhs_grade(const ErrorAccumulator& acc, std::size_t min_pairs) {
  if (acc.count() < min_pairs) return BhsGrade::kInsufficientData;
  const double p5 = acc.within_5_mmhg();
  const double p10 = acc.within_10_mmhg();
  const double p15 = acc.within_15_mmhg();
  if (p5 >= 0.60 && p10 >= 0.85 && p15 >= 0.95) return BhsGrade::kA;
  if (p5 >= 0.50 && p10 >= 0.75 && p15 >= 0.90) return BhsGrade::kB;
  if (p5 >= 0.40 && p10 >= 0.65 && p15 >= 0.85) return BhsGrade::kC;
  return BhsGrade::kD;
}

SessionValidator::SessionValidator(ValidationConfig config) : config_(config) {}

void SessionValidator::add_truth(std::span<const bio::BeatTruth> beats,
                                 double clock_offset_s) {
  truth_.reserve(truth_.size() + beats.size());
  for (const auto& b : beats) {
    bio::BeatTruth shifted = b;
    shifted.onset_s -= clock_offset_s;
    truth_.push_back(shifted);
  }
}

void SessionValidator::add_estimate(double time_s, double systolic_mmhg,
                                    double diastolic_mmhg) {
  estimates_.push_back(EstimatedBeat{time_s, systolic_mmhg, diastolic_mmhg});
}

TransientMetrics transient_response(std::span<const EstimatedBeat> estimates,
                                    const bio::ScenarioProfile& profile,
                                    double band_mmhg) {
  TransientMetrics m;
  const auto& frames = profile.keyframes();
  // The largest systolic setpoint step between consecutive keyframes.
  std::size_t step = frames.size();
  double largest = 0.0;
  for (std::size_t i = 0; i + 1 < frames.size(); ++i) {
    const double d = std::abs(frames[i + 1].systolic_mmhg - frames[i].systolic_mmhg);
    if (d > largest) {
      largest = d;
      step = i;
    }
  }
  if (step == frames.size() || largest < 10.0) return m;  // no real transition

  m.step_time_s = frames[step].time_s;
  m.step_from_mmhg = frames[step].systolic_mmhg;
  m.step_to_mmhg = frames[step + 1].systolic_mmhg;
  // Analysis window: step onset until the keyframe after the transition
  // (while the target holds near step_to), or the last estimate.
  const double hold_end =
      (step + 2 < frames.size()) ? frames[step + 2].time_s : frames[step + 1].time_s;
  const double window_end =
      estimates.empty() ? hold_end : std::min(hold_end, estimates.back().time_s);

  const double dir = (m.step_to_mmhg >= m.step_from_mmhg) ? 1.0 : -1.0;
  const double thresh10 = m.step_from_mmhg + 0.10 * (m.step_to_mmhg - m.step_from_mmhg);
  const double thresh90 = m.step_from_mmhg + 0.90 * (m.step_to_mmhg - m.step_from_mmhg);

  double t10 = -1.0;
  double t90 = -1.0;
  double peak = 0.0;
  RunningStats tail_error;
  const double tail_start = window_end - 0.25 * (window_end - m.step_time_s);
  std::size_t in_window = 0;
  for (const auto& e : estimates) {
    if (e.time_s < m.step_time_s || e.time_s > window_end) continue;
    ++in_window;
    if (t10 < 0.0 && dir * (e.systolic_mmhg - thresh10) >= 0.0) t10 = e.time_s;
    if (t90 < 0.0 && dir * (e.systolic_mmhg - thresh90) >= 0.0) t90 = e.time_s;
    if (t90 >= 0.0) {
      peak = std::max(peak, std::abs(e.systolic_mmhg - m.step_to_mmhg));
    }
    if (e.time_s >= tail_start) tail_error.add(e.systolic_mmhg - m.step_to_mmhg);
  }
  if (in_window == 0) return m;
  m.valid = true;
  if (t10 >= 0.0 && t90 >= t10) m.rise_time_s = t90 - t10;
  m.peak_error_mmhg = peak;
  m.steady_state_error_mmhg = tail_error.mean();

  // Settling: the earliest in-window estimate from which every later
  // estimate stays within ±band of the target.
  double settled_at = -1.0;
  for (const auto& e : estimates) {
    if (e.time_s < m.step_time_s || e.time_s > window_end) continue;
    if (std::abs(e.systolic_mmhg - m.step_to_mmhg) <= band_mmhg) {
      if (settled_at < 0.0) settled_at = e.time_s;
    } else {
      settled_at = -1.0;
    }
  }
  if (settled_at >= 0.0) m.settling_time_s = settled_at - m.step_time_s;
  return m;
}

SessionValidationRecord SessionValidator::finalize(std::uint32_t session_id,
                                                   std::string cohort,
                                                   std::string scenario,
                                                   std::uint64_t seed,
                                                   const bio::ScenarioProfile* profile) {
  std::sort(truth_.begin(), truth_.end(),
            [](const bio::BeatTruth& a, const bio::BeatTruth& b) {
              return a.onset_s < b.onset_s;
            });
  std::sort(estimates_.begin(), estimates_.end(),
            [](const EstimatedBeat& a, const EstimatedBeat& b) {
              return a.time_s < b.time_s;
            });

  SessionValidationRecord rec;
  rec.session_id = session_id;
  rec.cohort = std::move(cohort);
  rec.scenario = std::move(scenario);
  rec.seed = seed;
  rec.truth_beats = truth_.size();
  rec.estimate_beats = estimates_.size();
  if (!truth_.empty()) {
    rec.duration_s = truth_.back().onset_s + truth_.back().interval_s - truth_.front().onset_s;
  }

  // Two-pointer pairing: an estimate scores against the truth beat whose
  // [onset, onset + interval) span contains its time.
  std::size_t ti = 0;
  for (const auto& e : estimates_) {
    while (ti < truth_.size() && truth_[ti].onset_s + truth_[ti].interval_s <= e.time_s) {
      ++ti;
    }
    if (ti >= truth_.size()) break;
    const auto& t = truth_[ti];
    if (e.time_s < t.onset_s) continue;  // in a gap before this truth beat
    ++rec.matched_beats;
    rec.sys_error.add(e.systolic_mmhg, t.systolic_mmhg);
    rec.dia_error.add(e.diastolic_mmhg, t.diastolic_mmhg);
    const double est_map = e.diastolic_mmhg + (e.systolic_mmhg - e.diastolic_mmhg) / 3.0;
    rec.map_error.add(est_map, t.map_mmhg);
  }

  if (profile != nullptr) {
    rec.transient = transient_response(estimates_, *profile, config_.settle_band_mmhg);
  }

  auto& reg = metrics::Registry::global();
  reg.counter(metrics::names::kValidationSessions).add(1);
  reg.counter(metrics::names::kValidationBeatsMatched).add(rec.matched_beats);
  reg.counter(metrics::names::kValidationBeatsUnmatched)
      .add(rec.estimate_beats - rec.matched_beats);
  const AamiVerdict verdict = aami_verdict(rec.sys_error, config_.min_pairs);
  if (verdict == AamiVerdict::kPass) {
    reg.counter(metrics::names::kValidationAamiPass).add(1);
  } else if (verdict == AamiVerdict::kFail) {
    reg.counter(metrics::names::kValidationAamiFail).add(1);
  }
  reg.gauge(metrics::names::kValidationLastSysBias).set(rec.sys_error.mean_error_mmhg());
  reg.gauge(metrics::names::kValidationLastSysSd).set(rec.sys_error.error_sd_mmhg());
  return rec;
}

std::vector<CohortValidation> aggregate_by_cohort(
    std::span<const SessionValidationRecord> records, std::size_t min_pairs) {
  std::map<std::string, CohortValidation> by_cohort;
  for (const auto& rec : records) {
    auto& c = by_cohort[rec.cohort];
    c.cohort = rec.cohort;
    ++c.sessions;
    if (aami_verdict(rec.sys_error, min_pairs) == AamiVerdict::kPass) {
      ++c.aami_pass_sessions;
    }
    c.sys_error.merge(rec.sys_error);
    c.dia_error.merge(rec.dia_error);
    c.map_error.merge(rec.map_error);
  }
  std::vector<CohortValidation> out;
  out.reserve(by_cohort.size());
  for (auto& [name, c] : by_cohort) out.push_back(std::move(c));
  return out;
}

void export_validation_jsonl(std::span<const SessionValidationRecord> records,
                             std::ostream& os, std::size_t min_pairs) {
  std::vector<const SessionValidationRecord*> ordered;
  ordered.reserve(records.size());
  for (const auto& r : records) ordered.push_back(&r);
  std::sort(ordered.begin(), ordered.end(),
            [](const SessionValidationRecord* a, const SessionValidationRecord* b) {
              return a->session_id < b->session_id;
            });

  for (const auto* r : ordered) {
    os << "{\"type\":\"validation_session\",\"id\":" << r->session_id << ",\"cohort\":\""
       << json_escape(r->cohort) << "\",\"scenario\":\"" << json_escape(r->scenario)
       << "\",\"seed\":" << r->seed << ",\"duration_s\":" << r->duration_s
       << ",\"truth_beats\":" << r->truth_beats << ",\"estimate_beats\":" << r->estimate_beats
       << ",\"matched_beats\":" << r->matched_beats;
    export_error_block(os, "sys", r->sys_error, min_pairs);
    export_error_block(os, "dia", r->dia_error, min_pairs);
    export_error_block(os, "map", r->map_error, min_pairs);
    // Transient metrics only appear when the scenario had a real step, so
    // steady-scenario lines stay byte-identical to pre-transient builds.
    if (r->transient.valid) {
      const auto& t = r->transient;
      os << ",\"transient\":{\"step_time_s\":" << t.step_time_s
         << ",\"step_from_mmhg\":" << t.step_from_mmhg
         << ",\"step_to_mmhg\":" << t.step_to_mmhg << ",\"rise_time_s\":" << t.rise_time_s
         << ",\"settling_time_s\":" << t.settling_time_s
         << ",\"steady_state_error_mmhg\":" << t.steady_state_error_mmhg
         << ",\"peak_error_mmhg\":" << t.peak_error_mmhg << "}";
    }
    os << "}\n";
  }

  const auto cohorts = aggregate_by_cohort(records, min_pairs);
  CohortValidation fleet;
  fleet.cohort = "fleet";
  for (const auto& c : cohorts) {
    os << "{\"type\":\"validation_cohort\",\"cohort\":\"" << json_escape(c.cohort)
       << "\",\"sessions\":" << c.sessions << ",\"aami_pass\":" << c.aami_pass_sessions;
    export_error_block(os, "sys", c.sys_error, min_pairs);
    export_error_block(os, "dia", c.dia_error, min_pairs);
    export_error_block(os, "map", c.map_error, min_pairs);
    os << "}\n";
    fleet.sessions += c.sessions;
    fleet.aami_pass_sessions += c.aami_pass_sessions;
    fleet.sys_error.merge(c.sys_error);
    fleet.dia_error.merge(c.dia_error);
    fleet.map_error.merge(c.map_error);
  }
  os << "{\"type\":\"validation_fleet\",\"sessions\":" << fleet.sessions
     << ",\"aami_pass\":" << fleet.aami_pass_sessions;
  export_error_block(os, "sys", fleet.sys_error, min_pairs);
  export_error_block(os, "dia", fleet.dia_error, min_pairs);
  export_error_block(os, "map", fleet.map_error, min_pairs);
  os << "}\n";
}

}  // namespace tono::core
