// Tests for the deterministic random number generator.
#include "src/common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace tono {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng{8};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng{9};
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformBelowInRange) {
  Rng rng{10};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_below(17), 17u);
  }
}

TEST(Rng, UniformBelowCoversAllValues) {
  Rng rng{11};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, GaussianMoments) {
  Rng rng{12};
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Rng, GaussianMeanSigma) {
  Rng rng{13};
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng{14};
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng{15};
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.exponential(1.0), 0.0);
}

TEST(Rng, BernoulliProbability) {
  Rng rng{16};
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng{17};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ForkStreamsAreIndependent) {
  Rng parent{42};
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsDeterministic) {
  Rng p1{42};
  Rng p2{42};
  Rng a = p1.fork(5);
  Rng b = p2.fork(5);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkNamedDistinctNames) {
  Rng p{42};
  Rng a = Rng{42}.fork_named("comparator");
  Rng b = Rng{42}.fork_named("modulator");
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, GaussianSpareCacheConsistency) {
  // Two generators with the same seed must stay in lockstep even when
  // gaussian() caching interleaves with other draws.
  Rng a{99};
  Rng b{99};
  (void)a.gaussian();
  (void)b.gaussian();
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_DOUBLE_EQ(a.gaussian(), b.gaussian());
}

// fill_gaussian must be indistinguishable from a scalar draw loop: same
// values, same end state, same spare-cache behaviour. These tests pin the
// contract the modulator's noise plan depends on.
TEST(RngFill, BitIdenticalToScalarDraws) {
  for (std::size_t n : {0u, 1u, 2u, 3u, 7u, 64u, 127u, 128u, 129u, 513u}) {
    Rng scalar{777};
    Rng bulk{777};
    std::vector<double> want(n);
    for (auto& v : want) v = scalar.gaussian();
    std::vector<double> got(n);
    bulk.fill_gaussian(got.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(want[i], got[i]) << "n=" << n << " i=" << i;
    }
    // End state identical, including the spare cache: the next draws agree.
    EXPECT_EQ(scalar.gaussian(), bulk.gaussian()) << "n=" << n;
    EXPECT_EQ(scalar.next_u64(), bulk.next_u64()) << "n=" << n;
  }
}

TEST(RngFill, SpareCarriesAcrossCalls) {
  // Odd-length fills leave a spare; the next fill (or scalar draw) must
  // consume it exactly as a scalar loop would.
  Rng scalar{31337};
  Rng bulk{31337};
  std::vector<double> want(10);
  for (auto& v : want) v = scalar.gaussian();
  std::vector<double> got(10);
  bulk.fill_gaussian(got.data(), 3);       // odd: spare cached
  bulk.fill_gaussian(got.data() + 3, 1);   // consumes the spare only
  bulk.fill_gaussian(got.data() + 4, 5);   // odd again
  got[9] = bulk.gaussian();                // scalar consumes the spare
  for (std::size_t i = 0; i < 10; ++i) ASSERT_EQ(want[i], got[i]) << i;
}

TEST(RngFill, SpareFromScalarDrawSeedsTheFill) {
  // A spare pending from a scalar gaussian() becomes dest[0].
  Rng scalar{5};
  Rng bulk{5};
  (void)scalar.gaussian();  // leaves a spare in both
  (void)bulk.gaussian();
  std::vector<double> want(4);
  for (auto& v : want) v = scalar.gaussian();
  std::vector<double> got(4);
  bulk.fill_gaussian(got.data(), 4);
  for (std::size_t i = 0; i < 4; ++i) ASSERT_EQ(want[i], got[i]) << i;
}

TEST(RngFill, MeanSigmaMatchesScalarAffineDraws) {
  Rng scalar{123456};
  Rng bulk{123456};
  const double mean = 1.5e-3;
  const double sigma = 30e-6;
  std::vector<double> want(257);
  for (auto& v : want) v = scalar.gaussian(mean, sigma);
  std::vector<double> got(257);
  bulk.fill_gaussian(got.data(), 257, mean, sigma);
  for (std::size_t i = 0; i < 257; ++i) ASSERT_EQ(want[i], got[i]) << i;
  EXPECT_EQ(scalar.gaussian(), bulk.gaussian());
}

// Chi-squared sanity check on uniform byte distribution.
TEST(Rng, UniformBytesChiSquared) {
  Rng rng{2024};
  std::vector<int> counts(256, 0);
  const int n = 256 * 1000;
  for (int i = 0; i < n / 8; ++i) {
    std::uint64_t v = rng.next_u64();
    for (int k = 0; k < 8; ++k) {
      counts[static_cast<std::size_t>(v & 0xff)]++;
      v >>= 8;
    }
  }
  const double expected = n / 256.0;
  double chi2 = 0.0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // 255 dof: mean 255, σ ≈ 22.6; accept ±5σ.
  EXPECT_GT(chi2, 255.0 - 113.0);
  EXPECT_LT(chi2, 255.0 + 113.0);
}

}  // namespace
}  // namespace tono
