// comparator.hpp — clocked 1-bit quantizer of the ΔΣ loop.
//
// Offset and hysteresis are first-order shaped by the loop (they appear as a
// DC shift / small limit-cycle perturbation rather than distortion), so the
// modulator tolerates millivolt-level values — the model lets tests verify
// exactly that. Metastability is modelled as a random decision inside a
// narrow band around the threshold.
#pragma once

#include <cmath>
#include <cstddef>

#include "src/common/rng.hpp"

namespace tono::analog {

struct ComparatorConfig {
  double offset_v{0.0};
  double hysteresis_v{0.0};        ///< full width of the hysteresis band
  double metastable_band_v{10e-6}; ///< |input| below this → random decision
  double noise_vrms{50e-6};        ///< input-referred rms noise
};

class Comparator {
 public:
  Comparator(const ComparatorConfig& config, Rng rng) noexcept
      : config_(config), rng_(rng) {}

  /// Clocked decision: returns +1 or −1. Inline: one call per modulator
  /// clock, and the noise draw benefits from inlining into the loop.
  [[nodiscard]] int decide(double input_v) noexcept {
    double v = input_v - config_.offset_v;
    if (config_.noise_vrms > 0.0) v += rng_.gaussian(0.0, config_.noise_vrms);
    // Hysteresis: the threshold leans toward keeping the previous decision.
    v -= 0.5 * config_.hysteresis_v * static_cast<double>(-last_);
    if (std::abs(v) < config_.metastable_band_v) {
      last_ = rng_.bernoulli(0.5) ? 1 : -1;
      return last_;
    }
    last_ = v >= 0.0 ? 1 : -1;
    return last_;
  }

  /// Pre-draws the noise for the next `n` decide_planned() calls into the
  /// caller-owned `noise_dest` (the modulator's per-frame noise plan).
  /// decide_planned() then consumes one entry per call and stays
  /// bit-identical to decide(): the only draw that cannot be planned is the
  /// metastable Bernoulli — it depends on the decision input — and when one
  /// fires, the out-of-line slow path rewinds to a snapshot of the stream,
  /// replays the Gaussians consumed so far, interleaves the Bernoulli at its
  /// scalar position, and refills the rest of the plan from the new state.
  /// Metastable events are rare at the paper's operating point (band is µV
  /// against ~100 mV quantizer swing), so the resync cost is amortized away.
  void plan(double* noise_dest, std::size_t n) noexcept;

  /// Planned variant of decide(): same decision logic, noise read from the
  /// plan() buffer instead of drawn inline. Requires an active plan with at
  /// least one unconsumed entry.
  [[nodiscard]] int decide_planned(double input_v) noexcept {
    double v = input_v - config_.offset_v;
    if (config_.noise_vrms > 0.0) v += plan_buf_[plan_idx_++];
    v -= 0.5 * config_.hysteresis_v * static_cast<double>(-last_);
    if (std::abs(v) < config_.metastable_band_v) {
      last_ = planned_metastable_() ? 1 : -1;
      return last_;
    }
    last_ = v >= 0.0 ? 1 : -1;
    return last_;
  }

  /// Bank fill-path variant of plan(): identical bookkeeping (snapshot taken
  /// BEFORE any draw — it anchors the metastable resync), but the bulk fill
  /// itself is left to the caller, who batches it across lanes through the
  /// returned stream (Rng::fill_gaussian_multi) and then applies the same
  /// `0.0 + noise_vrms * x` affine map fill_gaussian(mean, sigma) would.
  /// Returns nullptr when noise is off (nothing to pre-draw — see plan()).
  [[nodiscard]] Rng* plan_external(double* noise_dest, std::size_t n) noexcept;

  /// Vectorized-bank escape hatch: the width-W kernel evaluated this lane's
  /// decision for plan index `idx` (consuming its noise entry, when noise is
  /// on) and landed in the metastable band. Replays the scalar slow path —
  /// resync the stream, draw the Bernoulli at its scalar position, refill
  /// plan entries (idx+1, len) — and returns the ±1 decision, updating the
  /// hysteresis memory exactly as decide_planned() would have.
  [[nodiscard]] int decide_metastable_at(std::size_t idx) noexcept {
    plan_idx_ = idx + (config_.noise_vrms > 0.0 ? 1 : 0);
    last_ = planned_metastable_() ? 1 : -1;
    return last_;
  }

  /// Writes the hysteresis memory back after a vectorized block, where the
  /// per-clock decisions lived in the bank's SoA state. `last` must be ±1.
  void set_last_decision(int last) noexcept { last_ = last; }

  [[nodiscard]] int last_decision() const noexcept { return last_; }
  [[nodiscard]] const ComparatorConfig& config() const noexcept { return config_; }

  /// Checkpointing: the noise stream and the hysteresis memory. The planned
  /// block state is transient (plans live inside one frame; checkpoints are
  /// taken at frame/batch boundaries) and is neither stored nor restored.
  void serialize(CheckpointWriter& out) const;
  void restore(CheckpointReader& in);

 private:
  /// Slow path: metastable Bernoulli during a planned block (see plan()).
  bool planned_metastable_() noexcept;

  ComparatorConfig config_;
  Rng rng_;
  int last_{1};
  // Planned-block state. `plan_snapshot_` is the rng state at the start of
  // the current fill segment (plan entries [segment_start_, plan_len_) were
  // bulk-generated from it); it is what makes the metastable resync exact.
  double* plan_buf_{nullptr};
  std::size_t plan_len_{0};
  std::size_t plan_idx_{0};
  std::size_t segment_start_{0};
  Rng plan_snapshot_{0};
};

}  // namespace tono::analog
