// table.hpp — report formatting for benchmark output.
//
// The benchmark harness reproduces the paper's tables and figures as text:
// aligned ASCII tables for tables, and CSV series (plus coarse ASCII plots)
// for figures. Everything funnels through these two classes so all bench
// binaries print consistently.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace tono {

/// Column-aligned ASCII table with a title row, e.g.
///
///   == Electrical operating point ==
///   parameter            value      unit
///   -------------------  ---------  -----
///   sampling frequency   128.000    kHz
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  /// Sets the column headers (fixes the column count).
  void set_header(std::vector<std::string> header);

  /// Appends a row; pads or truncates to the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience for mixed text/numeric rows; numbers are formatted with
  /// `precision` significant decimal digits.
  void add_row(const std::string& label, double value, const std::string& unit = "",
               int precision = 4);

  [[nodiscard]] std::string to_string() const;
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Named (x, y) series writer: CSV block plus an optional ASCII plot, used to
/// regenerate the paper's figures in text form.
class SeriesWriter {
 public:
  SeriesWriter(std::string name, std::string x_label, std::string y_label)
      : name_(std::move(name)), x_label_(std::move(x_label)), y_label_(std::move(y_label)) {}

  void add(double x, double y);
  void reserve(std::size_t n);

  /// Emits "# series <name>" followed by "x_label,y_label" CSV rows.
  void write_csv(std::ostream& os) const;

  /// Renders a coarse ASCII line plot (width x height characters) so figure
  /// shape is visible directly in bench output.
  void write_ascii_plot(std::ostream& os, std::size_t width = 72,
                        std::size_t height = 16) const;

  /// Downsamples to at most `max_points` by keeping every k-th point
  /// (always keeps the last point). Used before CSV dumps of long waveforms.
  [[nodiscard]] SeriesWriter decimated(std::size_t max_points) const;

  [[nodiscard]] std::size_t size() const noexcept { return xs_.size(); }
  [[nodiscard]] const std::vector<double>& xs() const noexcept { return xs_; }
  [[nodiscard]] const std::vector<double>& ys() const noexcept { return ys_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
  std::string x_label_;
  std::string y_label_;
  std::vector<double> xs_;
  std::vector<double> ys_;
};

/// Formats a double with fixed precision (report helper).
[[nodiscard]] std::string format_double(double value, int precision = 4);

}  // namespace tono
