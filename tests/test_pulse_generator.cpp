// Tests for the arterial pulse generator with physiological variability.
#include "src/bio/pulse_generator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/statistics.hpp"

namespace tono::bio {
namespace {

TEST(PulseGenerator, PressureWithinPhysiologicalBand) {
  ArterialPulseGenerator gen{PulseConfig{}};
  const auto wave = gen.generate(250.0, 250 * 30);
  EXPECT_GT(min_value(wave), 60.0);
  EXPECT_LT(max_value(wave), 140.0);
}

TEST(PulseGenerator, MeanSetpointsTrackConfig) {
  PulseConfig cfg;
  cfg.drift_mmhg_per_sqrt_s = 0.0;
  ArterialPulseGenerator gen{cfg};
  (void)gen.generate(250.0, 250 * 60);
  EXPECT_NEAR(gen.mean_systolic_mmhg(), 120.0, 3.0);
  EXPECT_NEAR(gen.mean_diastolic_mmhg(), 80.0, 3.0);
}

TEST(PulseGenerator, BeatIntervalsMatchHeartRate) {
  PulseConfig cfg;
  cfg.heart_rate_bpm = 60.0;
  cfg.hrv_jitter = 0.0;
  cfg.mayer_depth = 0.0;
  cfg.rsa_depth = 0.0;
  ArterialPulseGenerator gen{cfg};
  (void)gen.generate(500.0, 500 * 30);
  const auto& truth = gen.beat_truth();
  ASSERT_GE(truth.size(), 25u);
  for (const auto& b : truth) EXPECT_NEAR(b.interval_s, 1.0, 0.01);
}

TEST(PulseGenerator, HrvJitterSpreadsIntervals) {
  PulseConfig cfg;
  cfg.hrv_jitter = 0.05;
  cfg.mayer_depth = 0.0;
  cfg.rsa_depth = 0.0;
  ArterialPulseGenerator gen{cfg};
  (void)gen.generate(500.0, 500 * 120);
  std::vector<double> intervals;
  for (const auto& b : gen.beat_truth()) intervals.push_back(b.interval_s);
  ASSERT_GE(intervals.size(), 50u);
  EXPECT_GT(stddev(intervals) / mean(intervals), 0.02);
}

TEST(PulseGenerator, TruthBeatsAreOrderedAndContiguous) {
  ArterialPulseGenerator gen{PulseConfig{}};
  (void)gen.generate(500.0, 500 * 20);
  const auto& truth = gen.beat_truth();
  ASSERT_GE(truth.size(), 2u);
  for (std::size_t i = 1; i < truth.size(); ++i) {
    EXPECT_GT(truth[i].onset_s, truth[i - 1].onset_s);
    EXPECT_NEAR(truth[i].onset_s, truth[i - 1].onset_s + truth[i - 1].interval_s, 0.01);
  }
}

TEST(PulseGenerator, TruthSysAboveDia) {
  ArterialPulseGenerator gen{PulseConfig{}};
  (void)gen.generate(500.0, 500 * 30);
  for (const auto& b : gen.beat_truth()) {
    EXPECT_GT(b.systolic_mmhg, b.diastolic_mmhg);
    EXPECT_GT(b.map_mmhg, b.diastolic_mmhg);
    EXPECT_LT(b.map_mmhg, b.systolic_mmhg);
  }
}

TEST(PulseGenerator, MapClosestToDiastolic) {
  // Arterial MAP sits in the lower half of the pulse (diastole dominates).
  PulseConfig cfg;
  cfg.drift_mmhg_per_sqrt_s = 0.0;
  ArterialPulseGenerator gen{cfg};
  (void)gen.generate(500.0, 500 * 30);
  for (const auto& b : gen.beat_truth()) {
    EXPECT_LT(b.map_mmhg, (b.systolic_mmhg + b.diastolic_mmhg) / 2.0);
  }
}

TEST(PulseGenerator, DeterministicAcrossRuns) {
  ArterialPulseGenerator a{PulseConfig{}};
  ArterialPulseGenerator b{PulseConfig{}};
  const auto wa = a.generate(250.0, 1000);
  const auto wb = b.generate(250.0, 1000);
  EXPECT_EQ(wa, wb);
}

TEST(PulseGenerator, SeedChangesWaveform) {
  PulseConfig c1;
  c1.seed = 1;
  PulseConfig c2;
  c2.seed = 2;
  const auto wa = ArterialPulseGenerator{c1}.generate(250.0, 2000);
  const auto wb = ArterialPulseGenerator{c2}.generate(250.0, 2000);
  EXPECT_NE(wa, wb);
}

TEST(PulseGenerator, RespirationModulatesBaseline) {
  PulseConfig with;
  with.respiration_baseline_mmhg = 5.0;
  with.drift_mmhg_per_sqrt_s = 0.0;
  PulseConfig without = with;
  without.respiration_baseline_mmhg = 0.0;
  const auto ww = ArterialPulseGenerator{with}.generate(100.0, 100 * 30);
  const auto wo = ArterialPulseGenerator{without}.generate(100.0, 100 * 30);
  // Respiration widens the overall range.
  EXPECT_GT(peak_to_peak(ww), peak_to_peak(wo) + 2.0);
}

TEST(PulseGenerator, RejectsBadConfig) {
  PulseConfig bad;
  bad.systolic_mmhg = 70.0;  // below diastolic
  EXPECT_THROW((ArterialPulseGenerator{bad}), std::invalid_argument);
  PulseConfig bad2;
  bad2.heart_rate_bpm = 10.0;
  EXPECT_THROW((ArterialPulseGenerator{bad2}), std::invalid_argument);
}

TEST(PulseGenerator, RejectsBadDt) {
  ArterialPulseGenerator gen{PulseConfig{}};
  EXPECT_THROW((void)gen.sample(0.0), std::invalid_argument);
  EXPECT_THROW((void)gen.generate(0.0, 10), std::invalid_argument);
}

// Property: generator honours different clinical setpoints.
struct Setpoint {
  double sys;
  double dia;
  double hr;
};

class SetpointTest : public ::testing::TestWithParam<Setpoint> {};

TEST_P(SetpointTest, TracksTarget) {
  PulseConfig cfg;
  cfg.systolic_mmhg = GetParam().sys;
  cfg.diastolic_mmhg = GetParam().dia;
  cfg.heart_rate_bpm = GetParam().hr;
  cfg.drift_mmhg_per_sqrt_s = 0.0;
  ArterialPulseGenerator gen{cfg};
  (void)gen.generate(250.0, 250 * 40);
  EXPECT_NEAR(gen.mean_systolic_mmhg(), GetParam().sys, 4.0);
  EXPECT_NEAR(gen.mean_diastolic_mmhg(), GetParam().dia, 4.0);
  const auto& truth = gen.beat_truth();
  const double expected_beats = 40.0 * GetParam().hr / 60.0;
  EXPECT_NEAR(static_cast<double>(truth.size()), expected_beats, expected_beats * 0.1);
}

INSTANTIATE_TEST_SUITE_P(Clinical, SetpointTest,
                         ::testing::Values(Setpoint{120.0, 80.0, 72.0},
                                           Setpoint{100.0, 65.0, 55.0},
                                           Setpoint{150.0, 95.0, 90.0},
                                           Setpoint{180.0, 110.0, 110.0}));

}  // namespace
}  // namespace tono::bio
