file(REMOVE_RECURSE
  "../bench/bench_fig7_adc_spectrum"
  "../bench/bench_fig7_adc_spectrum.pdb"
  "CMakeFiles/bench_fig7_adc_spectrum.dir/bench_fig7_adc_spectrum.cpp.o"
  "CMakeFiles/bench_fig7_adc_spectrum.dir/bench_fig7_adc_spectrum.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_adc_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
