file(REMOVE_RECURSE
  "CMakeFiles/tono_core.dir/autorange.cpp.o"
  "CMakeFiles/tono_core.dir/autorange.cpp.o.d"
  "CMakeFiles/tono_core.dir/beat_detection.cpp.o"
  "CMakeFiles/tono_core.dir/beat_detection.cpp.o.d"
  "CMakeFiles/tono_core.dir/calibration.cpp.o"
  "CMakeFiles/tono_core.dir/calibration.cpp.o.d"
  "CMakeFiles/tono_core.dir/chip_config.cpp.o"
  "CMakeFiles/tono_core.dir/chip_config.cpp.o.d"
  "CMakeFiles/tono_core.dir/holddown.cpp.o"
  "CMakeFiles/tono_core.dir/holddown.cpp.o.d"
  "CMakeFiles/tono_core.dir/hrv.cpp.o"
  "CMakeFiles/tono_core.dir/hrv.cpp.o.d"
  "CMakeFiles/tono_core.dir/imaging.cpp.o"
  "CMakeFiles/tono_core.dir/imaging.cpp.o.d"
  "CMakeFiles/tono_core.dir/monitor.cpp.o"
  "CMakeFiles/tono_core.dir/monitor.cpp.o.d"
  "CMakeFiles/tono_core.dir/pipeline.cpp.o"
  "CMakeFiles/tono_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/tono_core.dir/pwa.cpp.o"
  "CMakeFiles/tono_core.dir/pwa.cpp.o.d"
  "CMakeFiles/tono_core.dir/quality.cpp.o"
  "CMakeFiles/tono_core.dir/quality.cpp.o.d"
  "CMakeFiles/tono_core.dir/scan.cpp.o"
  "CMakeFiles/tono_core.dir/scan.cpp.o.d"
  "CMakeFiles/tono_core.dir/sensor_array.cpp.o"
  "CMakeFiles/tono_core.dir/sensor_array.cpp.o.d"
  "CMakeFiles/tono_core.dir/streaming_monitor.cpp.o"
  "CMakeFiles/tono_core.dir/streaming_monitor.cpp.o.d"
  "CMakeFiles/tono_core.dir/telemetry.cpp.o"
  "CMakeFiles/tono_core.dir/telemetry.cpp.o.d"
  "libtono_core.a"
  "libtono_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tono_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
