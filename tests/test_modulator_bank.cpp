// Tests for the lockstep SoA modulator bank and the parallel array readout.
#include "src/analog/modulator_bank.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "src/core/chip_config.hpp"
#include "src/core/pipeline.hpp"

namespace tono::analog {
namespace {

// The bank's core contract: lane k's bitstream and end state are
// bit-identical to running that lane's modulator alone.
void expect_lanes_match_solo(const std::vector<ModulatorConfig>& configs,
                             const std::vector<double>& c_sense,
                             const std::vector<double>& c_ref, std::size_t n) {
  const std::size_t lanes = configs.size();
  ModulatorBank bank{configs};
  std::vector<int> bank_bits(lanes * n);
  bank.step_capacitive_block(c_sense.data(), c_ref.data(), bank_bits.data(), n);
  for (std::size_t k = 0; k < lanes; ++k) {
    DeltaSigmaModulator solo{configs[k]};
    std::vector<int> want(n);
    solo.step_capacitive_block(c_sense[k], c_ref[k], want.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(want[i], bank_bits[k * n + i]) << "lane=" << k << " i=" << i;
    }
    EXPECT_EQ(solo.integrator1_v(), bank.lane(k).integrator1_v()) << k;
    EXPECT_EQ(solo.integrator2_v(), bank.lane(k).integrator2_v()) << k;
    EXPECT_EQ(solo.time_s(), bank.lane(k).time_s()) << k;
  }
}

TEST(ModulatorBank, LanesMatchIndependentModulators) {
  std::vector<ModulatorConfig> configs(4);
  for (std::size_t k = 0; k < configs.size(); ++k) configs[k].seed = 100 + k * 7919;
  const std::vector<double> c_sense{95e-15, 104e-15, 112e-15, 99e-15};
  const std::vector<double> c_ref(4, 100e-15);
  expect_lanes_match_solo(configs, c_sense, c_ref, 1280);
}

TEST(ModulatorBank, HeterogeneousLaneConfigs) {
  // Lanes that disagree in every planning-relevant way: noise sources on or
  // off, flicker, loop order, metastability — one frame schedule must serve
  // all of them.
  std::vector<ModulatorConfig> configs(4);
  configs[0].seed = 1;
  configs[1].seed = 2;
  configs[1].enable_ktc_noise = false;
  configs[1].ref_noise_vrms = 0.0;
  configs[2].seed = 3;
  configs[2].order = 1;
  configs[2].opamp1.flicker_corner_hz = 1000.0;
  configs[3].seed = 4;
  configs[3].comparator.metastable_band_v = 0.4;
  const std::vector<double> c_sense{90e-15, 118e-15, 101e-15, 107e-15};
  const std::vector<double> c_ref(4, 100e-15);
  expect_lanes_match_solo(configs, c_sense, c_ref, 640);
}

TEST(ModulatorBank, OddBlockLengths) {
  std::vector<ModulatorConfig> configs(2);
  configs[1].seed = 77;
  const std::vector<double> c_sense{103e-15, 97e-15};
  const std::vector<double> c_ref(2, 100e-15);
  for (std::size_t n : {1u, 127u, 129u, 300u}) {
    expect_lanes_match_solo(configs, c_sense, c_ref, n);
  }
}

TEST(ModulatorBank, ConvenienceSeedingKeepsLaneZeroAndDecorrelates) {
  ModulatorConfig base;
  ModulatorBank bank{base, 3};
  EXPECT_EQ(bank.lanes(), 3u);
  EXPECT_EQ(bank.lane(0).config().seed, base.seed);
  EXPECT_NE(bank.lane(1).config().seed, base.seed);
  EXPECT_NE(bank.lane(1).config().seed, bank.lane(2).config().seed);
  // Decorrelated seeds ⇒ different bitstreams for identical inputs.
  const std::vector<double> c_sense(3, 108e-15);
  const std::vector<double> c_ref(3, 100e-15);
  std::vector<int> bits(3 * 512);
  bank.step_capacitive_block(c_sense.data(), c_ref.data(), bits.data(), 512);
  int diff01 = 0;
  int diff12 = 0;
  for (std::size_t i = 0; i < 512; ++i) {
    diff01 += bits[i] != bits[512 + i];
    diff12 += bits[512 + i] != bits[1024 + i];
  }
  EXPECT_GT(diff01, 0);
  EXPECT_GT(diff12, 0);
}

TEST(ModulatorBank, DefaultReferenceBranchMatchesScalarOverload) {
  ModulatorConfig base;
  base.cap_mismatch_sigma = 0.01;  // make the ref-mismatch branch visible
  ModulatorBank bank{base, 2};
  const std::vector<double> c_sense{102e-15, 102e-15};
  std::vector<int> bank_bits(2 * 256);
  bank.step_capacitive_block(c_sense.data(), bank_bits.data(), 256);
  for (std::size_t k = 0; k < 2; ++k) {
    DeltaSigmaModulator solo{bank.lane(k).config()};
    std::vector<int> want(256);
    for (auto& b : want) b = solo.step_capacitive(c_sense[k]);
    for (std::size_t i = 0; i < 256; ++i) {
      ASSERT_EQ(want[i], bank_bits[k * 256 + i]) << "lane=" << k << " i=" << i;
    }
  }
}

TEST(ModulatorBank, ResetRestoresEveryLane) {
  ModulatorConfig base;
  ModulatorBank bank{base, 2};
  const std::vector<double> c_sense{105e-15, 95e-15};
  const std::vector<double> c_ref(2, 100e-15);
  std::vector<int> first(2 * 384);
  bank.step_capacitive_block(c_sense.data(), c_ref.data(), first.data(), 384);
  bank.reset();
  // reset() restores loop state but not the rng streams (same contract as
  // DeltaSigmaModulator::reset) — compare against a solo run doing the same.
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_EQ(bank.lane(k).integrator1_v(), 0.0);
    EXPECT_EQ(bank.lane(k).time_s(), 0.0);
  }
}

TEST(ModulatorBank, RejectsEmptyBank) {
  EXPECT_THROW((ModulatorBank{std::vector<ModulatorConfig>{}}),
               std::invalid_argument);
}

TEST(ArrayAcquisition, LaneZeroMatchesSingleConverterReference) {
  // Lane 0 keeps the base modulator seed and reads element 0, so its sample
  // stream must be bit-identical to a hand-built single converter (modulator
  // + decimation chain, no mux) fed element 0's capacitance.
  const core::ChipConfig chip = core::ChipConfig::paper_chip();
  core::ArrayAcquisition array{chip};
  const auto field = [](double, double, double) { return 8000.0; };
  const std::size_t frames = 16;
  const auto array_out = array.acquire_block(field, frames);
  ASSERT_EQ(array_out.size(), array.size());
  ASSERT_EQ(array_out[0].size(), frames);

  const core::SensorArray ref_array{chip};
  DeltaSigmaModulator mod{chip.modulator};
  dsp::DecimationChain chain{chip.decimation};
  const std::size_t n = chip.decimation.total_decimation;
  const double c_sense = ref_array.element(0).capacitance(8000.0, 300.0);
  std::vector<int> bits(n);
  for (std::size_t i = 0; i < frames; ++i) {
    mod.step_capacitive_block(c_sense, ref_array.reference_capacitance(),
                              bits.data(), n);
    const auto sample = chain.push_frame({bits.data(), n});
    EXPECT_EQ(sample.code, array_out[0][i].code) << i;
    EXPECT_EQ(sample.value, array_out[0][i].value) << i;
  }
}

TEST(ArrayAcquisition, ProducesOneImagePerOutputPeriod) {
  const core::ChipConfig chip = core::ChipConfig::paper_chip();
  core::ArrayAcquisition array{chip};
  // A pressure gradient across the die: elements must disagree in a
  // position-dependent way.
  const auto field = [](double x_m, double, double) {
    return 8000.0 + 4.0e7 * x_m;
  };
  const auto out = array.acquire_block(field, 32);
  ASSERT_EQ(out.size(), 4u);
  for (const auto& lane : out) ASSERT_EQ(lane.size(), 32u);
  // Discard the decimation-filter settling transient, then compare means.
  auto tail_mean = [](const std::vector<dsp::DecimatedSample>& s) {
    double sum = 0.0;
    for (std::size_t i = 16; i < s.size(); ++i) sum += s[i].value;
    return sum / (s.size() - 16);
  };
  // Row-major 2×2: elements 0/2 sit at −x, 1/3 at +x → larger pressure at
  // +x bends the membrane further, so capacitance and code go up.
  EXPECT_GT(tail_mean(out[1]), tail_mean(out[0]));
  EXPECT_GT(tail_mean(out[3]), tail_mean(out[2]));
}

}  // namespace
}  // namespace tono::analog
