file(REMOVE_RECURSE
  "CMakeFiles/test_thermal_drift.dir/test_thermal_drift.cpp.o"
  "CMakeFiles/test_thermal_drift.dir/test_thermal_drift.cpp.o.d"
  "test_thermal_drift"
  "test_thermal_drift.pdb"
  "test_thermal_drift[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thermal_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
