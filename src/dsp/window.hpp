// window.hpp — spectral analysis window functions.
//
// Fig. 7 of the paper shows a windowed FFT of the ΔΣ ADC output; the SNR
// computation needs the window's coherent gain and equivalent noise bandwidth
// (ENBW) to normalize signal and noise power correctly. Window choice is an
// explicit parameter everywhere so tests can pin exact values.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tono::dsp {

enum class WindowKind {
  kRectangular,
  kHann,
  kHamming,
  kBlackman,
  kBlackmanHarris4,  // 4-term, -92 dB sidelobes; default for ADC spectra
  kKaiser,           // parameterized by beta
};

/// Returns the window samples w[0..n-1] (periodic form, suitable for FFT
/// analysis). `kaiser_beta` is only used for WindowKind::kKaiser.
[[nodiscard]] std::vector<double> make_window(WindowKind kind, std::size_t n,
                                              double kaiser_beta = 8.6);

/// Sum(w)/n — amplitude scaling of a coherent sinusoid under the window.
[[nodiscard]] double coherent_gain(const std::vector<double>& window) noexcept;

/// Normalized equivalent noise bandwidth in bins:
/// n * sum(w^2) / sum(w)^2. Rectangular = 1.0, Hann = 1.5, BH4 ≈ 2.0.
[[nodiscard]] double enbw_bins(const std::vector<double>& window) noexcept;

/// Number of bins on each side of a peak that contain significant window
/// leakage; spectral metrics exclude these when integrating noise.
[[nodiscard]] std::size_t leakage_halfwidth_bins(WindowKind kind) noexcept;

[[nodiscard]] std::string to_string(WindowKind kind);

}  // namespace tono::dsp
