// Tests for biquad IIR sections.
#include "src/dsp/biquad.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

namespace tono::dsp {
namespace {

double measure_gain(Biquad f, double freq, double fs) {
  // Steady-state sine amplitude after settling.
  const std::size_t n = static_cast<std::size_t>(fs * 4.0);
  double peak = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double y = f.push(std::sin(2.0 * std::numbers::pi * freq * i / fs));
    if (i > n / 2) peak = std::max(peak, std::abs(y));
  }
  return peak;
}

TEST(Biquad, LowpassDcGainUnity) {
  auto f = Biquad::lowpass(50.0, 1000.0);
  double y = 0.0;
  for (int i = 0; i < 2000; ++i) y = f.push(1.0);
  EXPECT_NEAR(y, 1.0, 1e-6);
}

TEST(Biquad, LowpassAttenuatesHighFrequency) {
  auto f = Biquad::lowpass(50.0, 1000.0);
  EXPECT_LT(measure_gain(f, 400.0, 1000.0), 0.05);
}

TEST(Biquad, LowpassMinusThreeDbAtCutoff) {
  auto f = Biquad::lowpass(50.0, 1000.0);
  EXPECT_NEAR(f.magnitude_at(50.0, 1000.0), 1.0 / std::sqrt(2.0), 0.01);
}

TEST(Biquad, HighpassBlocksDc) {
  auto f = Biquad::highpass(1.0, 1000.0);
  double y = 1.0;
  for (int i = 0; i < 20000; ++i) y = f.push(1.0);
  EXPECT_NEAR(y, 0.0, 1e-3);
}

TEST(Biquad, HighpassPassesHighFrequency) {
  auto f = Biquad::highpass(1.0, 1000.0);
  EXPECT_NEAR(f.magnitude_at(100.0, 1000.0), 1.0, 0.01);
}

TEST(Biquad, BandpassPeaksAtCenter) {
  auto f = Biquad::bandpass(10.0, 2.0, 1000.0);
  EXPECT_NEAR(f.magnitude_at(10.0, 1000.0), 1.0, 0.01);
  EXPECT_LT(f.magnitude_at(1.0, 1000.0), 0.3);
  EXPECT_LT(f.magnitude_at(100.0, 1000.0), 0.3);
}

TEST(Biquad, NotchNullsCenter) {
  auto f = Biquad::notch(50.0, 10.0, 1000.0);
  EXPECT_LT(f.magnitude_at(50.0, 1000.0), 1e-6);
  EXPECT_NEAR(f.magnitude_at(5.0, 1000.0), 1.0, 0.05);
  EXPECT_NEAR(f.magnitude_at(300.0, 1000.0), 1.0, 0.05);
}

TEST(Biquad, MagnitudeMatchesMeasurement) {
  auto design = Biquad::lowpass(30.0, 1000.0);
  for (double f : {10.0, 30.0, 60.0, 120.0}) {
    auto fresh = Biquad::lowpass(30.0, 1000.0);
    EXPECT_NEAR(measure_gain(fresh, f, 1000.0), design.magnitude_at(f, 1000.0), 0.02)
        << "f = " << f;
  }
}

TEST(Biquad, RejectsBadFrequencies) {
  EXPECT_THROW((void)Biquad::lowpass(0.0, 1000.0), std::invalid_argument);
  EXPECT_THROW((void)Biquad::lowpass(500.0, 1000.0), std::invalid_argument);
  EXPECT_THROW((void)Biquad::bandpass(50.0, 0.0, 1000.0), std::invalid_argument);
  EXPECT_THROW((void)Biquad::notch(50.0, -1.0, 1000.0), std::invalid_argument);
}

TEST(Biquad, ResetClearsState) {
  auto f = Biquad::lowpass(50.0, 1000.0);
  for (int i = 0; i < 100; ++i) (void)f.push(1.0);
  f.reset();
  EXPECT_NEAR(f.push(0.0), 0.0, 1e-15);
}

TEST(BiquadCascade, EmptyCascadeIsIdentity) {
  BiquadCascade c;
  EXPECT_DOUBLE_EQ(c.push(3.7), 3.7);
}

TEST(BiquadCascade, MagnitudeIsProduct) {
  BiquadCascade c;
  c.add(Biquad::lowpass(100.0, 1000.0));
  c.add(Biquad::highpass(1.0, 1000.0));
  const double expected = Biquad::lowpass(100.0, 1000.0).magnitude_at(50.0, 1000.0) *
                          Biquad::highpass(1.0, 1000.0).magnitude_at(50.0, 1000.0);
  EXPECT_NEAR(c.magnitude_at(50.0, 1000.0), expected, 1e-12);
}

TEST(BiquadCascade, ProcessAndReset) {
  BiquadCascade c;
  c.add(Biquad::lowpass(100.0, 1000.0));
  std::vector<double> in(100, 1.0);
  const auto a = c.process(in);
  c.reset();
  const auto b = c.process(in);
  EXPECT_EQ(a, b);
  EXPECT_EQ(c.section_count(), 1u);
}

TEST(BiquadCascade, BandpassCascadeSharpens) {
  BiquadCascade one;
  one.add(Biquad::bandpass(10.0, 1.0, 1000.0));
  BiquadCascade two;
  two.add(Biquad::bandpass(10.0, 1.0, 1000.0));
  two.add(Biquad::bandpass(10.0, 1.0, 1000.0));
  EXPECT_LT(two.magnitude_at(40.0, 1000.0), one.magnitude_at(40.0, 1000.0));
}

}  // namespace
}  // namespace tono::dsp
