# Empty compiler generated dependencies file for test_thermal_drift.
# This may be replaced when dependencies are built.
