// Tests for HRV metrics and rhythm classification.
#include "src/core/hrv.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/bio/pulse_generator.hpp"
#include "src/core/monitor.hpp"

namespace tono::core {
namespace {

HrvMetrics hrv_of(const bio::PulseConfig& cfg, double duration_s = 120.0) {
  bio::ArterialPulseGenerator gen{cfg};
  (void)gen.generate(250.0, static_cast<std::size_t>(duration_s * 250.0));
  std::vector<double> intervals;
  for (const auto& b : gen.beat_truth()) intervals.push_back(b.interval_s);
  return compute_hrv(intervals);
}

TEST(Hrv, ConstantIntervalsZeroVariability) {
  const std::vector<double> rr(20, 0.8);
  const auto m = compute_hrv(rr);
  EXPECT_EQ(m.beat_count, 21u);
  EXPECT_DOUBLE_EQ(m.mean_rr_s, 0.8);
  EXPECT_DOUBLE_EQ(m.sdnn_s, 0.0);
  EXPECT_DOUBLE_EQ(m.rmssd_s, 0.0);
  EXPECT_DOUBLE_EQ(m.pnn50, 0.0);
}

TEST(Hrv, KnownAlternatingPattern) {
  // RR alternates 0.8/0.9: every successive difference is 0.1 s.
  std::vector<double> rr;
  for (int i = 0; i < 40; ++i) rr.push_back(i % 2 == 0 ? 0.8 : 0.9);
  const auto m = compute_hrv(rr);
  EXPECT_NEAR(m.mean_rr_s, 0.85, 1e-9);
  EXPECT_NEAR(m.rmssd_s, 0.1, 1e-9);
  EXPECT_NEAR(m.pnn50, 1.0, 1e-9);  // all diffs exceed 50 ms
  EXPECT_NEAR(m.sdnn_s, 0.05, 1e-3);
  EXPECT_NEAR(m.sd1_s, 0.1 / std::sqrt(2.0), 1e-9);
}

TEST(Hrv, TooFewIntervalsZeroed) {
  const std::vector<double> rr{0.8, 0.82};
  const auto m = compute_hrv(rr);
  EXPECT_EQ(m.beat_count, 0u);
  EXPECT_FALSE(m.valid);
}

TEST(Hrv, DegenerateInputsStayFiniteAndInvalid) {
  // 0, 1 and 2 intervals: the single-interval case would hit a 0/0 RMSSD
  // denominator without the guard. Every field must come back a finite zero
  // with valid == false — never NaN, which would poison downstream reports.
  for (const auto& rr : {std::vector<double>{}, std::vector<double>{0.8},
                         std::vector<double>{0.8, 0.82}}) {
    const auto m = compute_hrv(rr);
    EXPECT_FALSE(m.valid) << rr.size();
    EXPECT_EQ(m.beat_count, 0u) << rr.size();
    for (double v : {m.mean_rr_s, m.sdnn_s, m.rmssd_s, m.pnn50, m.sd1_s, m.sd2_s,
                     m.cv()}) {
      EXPECT_TRUE(std::isfinite(v)) << rr.size();
      EXPECT_DOUBLE_EQ(v, 0.0) << rr.size();
    }
  }
  // The threshold case: 3 intervals is the smallest valid battery.
  const auto m = compute_hrv(std::vector<double>{0.8, 0.82, 0.79});
  EXPECT_TRUE(m.valid);
  EXPECT_EQ(m.beat_count, 4u);
  EXPECT_TRUE(std::isfinite(m.rmssd_s));
}

TEST(Hrv, PoincareIdentity) {
  // SD1² + SD2² = 2·SDNN² must hold by construction.
  auto m = hrv_of(bio::PatientPresets::normotensive());
  EXPECT_NEAR(m.sd1_s * m.sd1_s + m.sd2_s * m.sd2_s, 2.0 * m.sdnn_s * m.sdnn_s,
              1e-12);
}

TEST(Hrv, FromBeatAnalysisMatchesIntervals) {
  BeatAnalysis beats;
  for (int i = 0; i < 10; ++i) {
    Beat b;
    b.upstroke_s = 0.85 * i;
    beats.beats.push_back(b);
  }
  const auto m = compute_hrv(beats);
  EXPECT_EQ(m.beat_count, 10u);
  EXPECT_NEAR(m.mean_rr_s, 0.85, 1e-9);
}

TEST(Rhythm, SinusRhythmNotFlagged) {
  const auto m = hrv_of(bio::PatientPresets::normotensive());
  const auto r = classify_rhythm(m);
  EXPECT_FALSE(r.likely_af);
  EXPECT_LT(r.irregularity_score, 0.5);
}

TEST(Rhythm, RespiratorySinusArrhythmiaNotFlagged) {
  // Strong RSA: large slow modulation, still regular beat to beat.
  bio::PulseConfig cfg;
  cfg.rsa_depth = 0.08;
  cfg.mayer_depth = 0.04;
  cfg.hrv_jitter = 0.01;
  const auto r = classify_rhythm(hrv_of(cfg));
  EXPECT_FALSE(r.likely_af);
}

TEST(Rhythm, AtrialFibrillationFlagged) {
  const auto m = hrv_of(bio::PatientPresets::atrial_fibrillation());
  const auto r = classify_rhythm(m);
  EXPECT_TRUE(r.likely_af);
  EXPECT_GT(r.irregularity_score, 0.5);
}

TEST(Rhythm, ScoreOrdering) {
  const auto nsr = classify_rhythm(hrv_of(bio::PatientPresets::normotensive()));
  const auto af = classify_rhythm(hrv_of(bio::PatientPresets::atrial_fibrillation()));
  EXPECT_GT(af.irregularity_score, nsr.irregularity_score + 0.2);
}

TEST(Rhythm, TooFewBeatsNeverFlags) {
  HrvMetrics m;
  m.beat_count = 4;
  m.mean_rr_s = 0.8;
  m.rmssd_s = 0.5;
  const auto r = classify_rhythm(m);
  EXPECT_FALSE(r.likely_af);
}

TEST(Rhythm, EndToEndThroughSensorChain) {
  // AF detection works on the *measured* waveform, not just ground truth.
  WristModel wrist;
  wrist.pulse = bio::PatientPresets::atrial_fibrillation();
  BloodPressureMonitor mon{ChipConfig::paper_chip(), wrist};
  (void)mon.calibrate(12.0);
  const auto rep = mon.monitor(60.0);
  const auto r = classify_rhythm(compute_hrv(rep.beats));
  EXPECT_TRUE(r.likely_af);

  WristModel normal;
  BloodPressureMonitor mon2{ChipConfig::paper_chip(), normal};
  (void)mon2.calibrate(12.0);
  const auto rep2 = mon2.monitor(60.0);
  const auto r2 = classify_rhythm(compute_hrv(rep2.beats));
  EXPECT_FALSE(r2.likely_af);
}

}  // namespace
}  // namespace tono::core
