#include "src/fleet/fault_plan.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "src/common/rng.hpp"

namespace tono::fleet {
namespace {

std::string format_seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", s);
  return buf;
}

const char* element_fault_name(core::ElementFault fault) {
  switch (fault) {
    case core::ElementFault::kNone: return "none";
    case core::ElementFault::kNotReleased: return "not-released";
    case core::ElementFault::kStuckDown: return "stuck-down";
  }
  return "unknown";
}

}  // namespace

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kContactLoss: return "contact-loss";
    case FaultKind::kLinkBurst: return "link-burst";
    case FaultKind::kElementFault: return "element-fault";
  }
  return "unknown";
}

FaultPlan::FaultPlan(const FaultPlanConfig& config, std::uint64_t seed,
                     std::size_t array_rows, std::size_t array_cols)
    : link_config_(config.link) {
  if (config.min_onset_s < 0.0 || config.horizon_s <= config.min_onset_s) {
    throw std::invalid_argument{"FaultPlan: need 0 <= min_onset_s < horizon_s"};
  }
  if (config.element_faults > 0 && (array_rows == 0 || array_cols == 0)) {
    throw std::invalid_argument{"FaultPlan: element faults need a nonempty array"};
  }

  // Fixed generation order (contact, link, element), each event drawing a
  // fixed number of values: the schedule depends only on (config, seed,
  // array shape), never on call patterns.
  Rng rng{seed};
  events_.reserve(config.contact_loss_events + config.link_bursts +
                  config.element_faults);
  for (std::size_t i = 0; i < config.contact_loss_events; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kContactLoss;
    e.at_s = rng.uniform(config.min_onset_s, config.horizon_s);
    e.duration_s = config.contact_loss_duration_s;
    e.throw_count = rng.bernoulli(config.unrecoverable_prob) ? kUnrecoverableThrows : 1;
    events_.push_back(e);
  }
  for (std::size_t i = 0; i < config.link_bursts; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kLinkBurst;
    e.at_s = rng.uniform(config.min_onset_s, config.horizon_s);
    e.duration_s = config.link_burst_duration_s;
    e.throw_count = 0;  // pure degradation; the decoder absorbs it
    events_.push_back(e);
  }
  for (std::size_t i = 0; i < config.element_faults; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kElementFault;
    e.at_s = rng.uniform(config.min_onset_s, config.horizon_s);
    e.row = static_cast<std::size_t>(rng.uniform_below(array_rows));
    e.col = static_cast<std::size_t>(rng.uniform_below(array_cols));
    e.element_fault = rng.bernoulli(0.5) ? core::ElementFault::kNotReleased
                                         : core::ElementFault::kStuckDown;
    e.throw_count = 0;  // graceful degradation via element re-route
    events_.push_back(e);
  }
  sort_();
}

void FaultPlan::add(const FaultEvent& event) {
  events_.push_back(event);
  sort_();
}

bool FaultPlan::has_link_bursts() const noexcept {
  return std::any_of(events_.begin(), events_.end(), [](const FaultEvent& e) {
    return e.kind == FaultKind::kLinkBurst;
  });
}

std::string FaultPlan::describe(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kContactLoss: {
      std::string s = "contact loss at " + format_seconds(event.at_s) + " s for " +
                      format_seconds(event.duration_s) + " s";
      if (event.throw_count == kUnrecoverableThrows) s += " (unrecoverable)";
      return s;
    }
    case FaultKind::kLinkBurst:
      return "link corruption burst at " + format_seconds(event.at_s) + " s for " +
             format_seconds(event.duration_s) + " s";
    case FaultKind::kElementFault:
      return "element (" + std::to_string(event.row) + "," +
             std::to_string(event.col) + ") " + element_fault_name(event.element_fault) +
             " at " + format_seconds(event.at_s) + " s";
  }
  return "unknown fault";
}

void FaultPlan::sort_() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.at_s < b.at_s; });
}

}  // namespace tono::fleet
