#include "src/core/beat_detection.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/common/statistics.hpp"
#include "src/dsp/biquad.hpp"

namespace tono::core {

BeatDetector::BeatDetector(const BeatDetectorConfig& config) : config_(config) {
  if (config_.sample_rate_hz <= 0.0) {
    throw std::invalid_argument{"BeatDetector: sample rate must be > 0"};
  }
  if (config_.lowpass_hz <= config_.highpass_hz) {
    throw std::invalid_argument{"BeatDetector: lowpass must exceed highpass"};
  }
  if (config_.threshold_fraction <= 0.0 || config_.threshold_fraction >= 1.0) {
    throw std::invalid_argument{"BeatDetector: threshold fraction must be in (0,1)"};
  }
}

BeatAnalysis BeatDetector::analyze(std::span<const double> samples, double t0_s) const {
  BeatAnalysis out;
  const double fs = config_.sample_rate_hz;
  const auto n = samples.size();
  if (n < static_cast<std::size_t>(fs)) return out;  // need at least 1 s

  // Detection band: remove wander, limit to the pulse band.
  dsp::BiquadCascade band;
  band.add(dsp::Biquad::highpass(config_.highpass_hz, fs));
  band.add(dsp::Biquad::lowpass(config_.lowpass_hz, fs));
  const auto filtered = band.process(samples);

  // Band-limited derivative.
  std::vector<double> slope(n, 0.0);
  for (std::size_t i = 1; i < n; ++i) slope[i] = (filtered[i] - filtered[i - 1]) * fs;

  // Adaptive threshold: exponentially decaying running peak of the slope.
  const double decay = std::exp(-1.0 / (config_.peak_decay_s * fs));
  const auto refractory = static_cast<std::size_t>(config_.refractory_s * fs);
  const auto foot_win = static_cast<std::size_t>(config_.foot_window_s * fs);
  const auto peak_win = static_cast<std::size_t>(config_.peak_window_s * fs);

  // The detection filters need ~1 s to forget their zero initial state; the
  // warmup transient would otherwise poison the adaptive threshold (and look
  // like a giant first upstroke). Skip it for both seeding and detection.
  const auto warmup = static_cast<std::size_t>(fs);
  if (n < 2 * warmup) return out;
  double running_peak = 0.0;
  for (std::size_t i = warmup; i < 2 * warmup; ++i) {
    running_peak = std::max(running_peak, slope[i]);
  }
  if (running_peak <= 0.0) return out;

  std::vector<std::size_t> upstrokes;
  std::size_t last_up = 0;
  bool armed = true;
  for (std::size_t i = warmup + 1; i < n; ++i) {
    running_peak *= decay;
    running_peak = std::max(running_peak, slope[i]);
    const double threshold = config_.threshold_fraction * running_peak;
    const bool past_refractory = upstrokes.empty() || i - last_up >= refractory;
    if (armed && past_refractory && slope[i] >= threshold && slope[i] > 0.0) {
      // Local slope maximum: wait until the slope starts dropping.
      if (i + 1 < n && slope[i + 1] < slope[i]) {
        upstrokes.push_back(i);
        last_up = i;
        armed = false;
      }
    }
    if (!armed && slope[i] < 0.0) armed = true;  // re-arm after the peak
  }

  // Expand upstrokes into beats.
  for (std::size_t b = 0; b < upstrokes.size(); ++b) {
    const std::size_t up = upstrokes[b];
    const std::size_t foot_lo = up > foot_win ? up - foot_win : 0;
    std::size_t foot = foot_lo;
    for (std::size_t i = foot_lo; i <= up; ++i) {
      if (samples[i] < samples[foot]) foot = i;
    }
    const std::size_t peak_hi = std::min(up + peak_win, n - 1);
    std::size_t peak = up;
    for (std::size_t i = up; i <= peak_hi; ++i) {
      if (samples[i] > samples[peak]) peak = i;
    }
    // Mean over this beat: foot to the next beat's foot (or record end).
    const std::size_t span_end =
        (b + 1 < upstrokes.size())
            ? std::min(upstrokes[b + 1], n - 1)
            : n - 1;
    double mean_acc = 0.0;
    std::size_t mean_n = 0;
    for (std::size_t i = foot; i <= span_end; ++i) {
      mean_acc += samples[i];
      ++mean_n;
    }
    Beat beat;
    beat.upstroke_s = t0_s + static_cast<double>(up) / fs;
    beat.foot_s = t0_s + static_cast<double>(foot) / fs;
    beat.peak_s = t0_s + static_cast<double>(peak) / fs;
    beat.systolic_value = samples[peak];
    beat.diastolic_value = samples[foot];
    beat.mean_value = mean_n > 0 ? mean_acc / static_cast<double>(mean_n) : samples[up];
    // A beat with no pulse amplitude is a filter-transient artefact (e.g. a
    // threshold crossing on a constant record), not a heart beat. A beat
    // whose peak coincides with the previous beat's is a double-fire on the
    // same pulse.
    const bool duplicate = !out.beats.empty() && out.beats.back().peak_s == beat.peak_s;
    if (beat.systolic_value > beat.diastolic_value && !duplicate) {
      out.beats.push_back(beat);
    }
  }

  // Reject dicrotic-wave false triggers: their pulse amplitude is a small
  // fraction of a real beat's.
  if (out.beats.size() >= 3 && config_.min_amplitude_fraction > 0.0) {
    std::vector<double> amps;
    amps.reserve(out.beats.size());
    for (const auto& b : out.beats) amps.push_back(b.systolic_value - b.diastolic_value);
    const double med = median(amps);
    const double floor_amp = config_.min_amplitude_fraction * med;
    std::vector<Beat> kept;
    kept.reserve(out.beats.size());
    for (const auto& b : out.beats) {
      if (b.systolic_value - b.diastolic_value >= floor_amp) kept.push_back(b);
    }
    out.beats = std::move(kept);
  }

  // Adaptive refractory: strongly augmented morphologies can trigger on the
  // secondary wave with near-beat amplitude. Any pair of detections closer
  // than half the median interval is one heart beat — keep the larger.
  if (out.beats.size() >= 4) {
    std::vector<double> raw_intervals;
    raw_intervals.reserve(out.beats.size() - 1);
    for (std::size_t b = 1; b < out.beats.size(); ++b) {
      raw_intervals.push_back(out.beats[b].upstroke_s - out.beats[b - 1].upstroke_s);
    }
    const double med_iv = median(raw_intervals);
    std::vector<Beat> kept;
    kept.reserve(out.beats.size());
    for (const auto& b : out.beats) {
      if (!kept.empty() && b.upstroke_s - kept.back().upstroke_s < 0.5 * med_iv) {
        const double amp_new = b.systolic_value - b.diastolic_value;
        const double amp_prev = kept.back().systolic_value - kept.back().diastolic_value;
        if (amp_new > amp_prev) kept.back() = b;
        continue;
      }
      kept.push_back(b);
    }
    out.beats = std::move(kept);
  }

  if (out.beats.empty()) return out;

  double sys_acc = 0.0;
  double dia_acc = 0.0;
  double map_acc = 0.0;
  for (const auto& beat : out.beats) {
    sys_acc += beat.systolic_value;
    dia_acc += beat.diastolic_value;
    map_acc += beat.mean_value;
  }
  const auto nb = static_cast<double>(out.beats.size());
  out.mean_systolic = sys_acc / nb;
  out.mean_diastolic = dia_acc / nb;
  out.mean_map = map_acc / nb;

  if (out.beats.size() >= 2) {
    std::vector<double> intervals;
    intervals.reserve(out.beats.size() - 1);
    for (std::size_t b = 1; b < out.beats.size(); ++b) {
      intervals.push_back(out.beats[b].upstroke_s - out.beats[b - 1].upstroke_s);
    }
    // Median interval for the rate: robust against the double-length gap a
    // single missed beat leaves behind.
    out.heart_rate_bpm = 60.0 / median(intervals);
    double mean_iv = 0.0;
    for (double iv : intervals) mean_iv += iv;
    mean_iv /= static_cast<double>(intervals.size());
    double var = 0.0;
    for (double iv : intervals) var += (iv - mean_iv) * (iv - mean_iv);
    out.interval_stddev_s = std::sqrt(var / static_cast<double>(intervals.size()));
  }
  return out;
}

}  // namespace tono::core
