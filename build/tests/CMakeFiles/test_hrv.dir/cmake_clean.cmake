file(REMOVE_RECURSE
  "CMakeFiles/test_hrv.dir/test_hrv.cpp.o"
  "CMakeFiles/test_hrv.dir/test_hrv.cpp.o.d"
  "test_hrv"
  "test_hrv.pdb"
  "test_hrv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hrv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
