// Tests for the clocked comparator.
#include "src/analog/comparator.hpp"

#include <gtest/gtest.h>

namespace tono::analog {
namespace {

ComparatorConfig quiet() {
  ComparatorConfig c;
  c.noise_vrms = 0.0;
  c.metastable_band_v = 0.0;
  return c;
}

TEST(Comparator, SignDecisions) {
  Comparator cmp{quiet(), tono::Rng{1}};
  EXPECT_EQ(cmp.decide(0.5), 1);
  EXPECT_EQ(cmp.decide(-0.5), -1);
}

TEST(Comparator, OffsetShiftsThreshold) {
  ComparatorConfig c = quiet();
  c.offset_v = 0.1;
  Comparator cmp{c, tono::Rng{1}};
  EXPECT_EQ(cmp.decide(0.05), -1);  // below offset
  EXPECT_EQ(cmp.decide(0.15), 1);
}

TEST(Comparator, HysteresisFavorsLastDecision) {
  ComparatorConfig c = quiet();
  c.hysteresis_v = 0.2;
  Comparator cmp{c, tono::Rng{1}};
  EXPECT_EQ(cmp.decide(1.0), 1);
  // Slightly negative input stays high inside the hysteresis band.
  EXPECT_EQ(cmp.decide(-0.05), 1);
  // Beyond the band it flips.
  EXPECT_EQ(cmp.decide(-0.15), -1);
  // And now slightly positive stays low.
  EXPECT_EQ(cmp.decide(0.05), -1);
}

TEST(Comparator, MetastableBandRandomizes) {
  ComparatorConfig c = quiet();
  c.metastable_band_v = 1e-3;
  Comparator cmp{c, tono::Rng{7}};
  int pos = 0;
  for (int i = 0; i < 1000; ++i) {
    if (cmp.decide(0.0) > 0) ++pos;
  }
  EXPECT_GT(pos, 300);
  EXPECT_LT(pos, 700);
}

TEST(Comparator, DeterministicWithSameSeed) {
  ComparatorConfig c;
  c.noise_vrms = 1e-3;
  Comparator a{c, tono::Rng{42}};
  Comparator b{c, tono::Rng{42}};
  for (int i = 0; i < 200; ++i) {
    const double v = (i % 7 - 3) * 1e-4;
    EXPECT_EQ(a.decide(v), b.decide(v));
  }
}

TEST(Comparator, NoiseFlipsMarginalDecisions) {
  ComparatorConfig c = quiet();
  c.noise_vrms = 10e-3;
  Comparator cmp{c, tono::Rng{3}};
  int pos = 0;
  for (int i = 0; i < 2000; ++i) {
    if (cmp.decide(1e-3) > 0) ++pos;  // input well inside the noise
  }
  EXPECT_GT(pos, 900);    // biased positive…
  EXPECT_LT(pos, 1500);   // …but not deterministic
}

TEST(Comparator, LastDecisionTracks) {
  Comparator cmp{quiet(), tono::Rng{1}};
  (void)cmp.decide(1.0);
  EXPECT_EQ(cmp.last_decision(), 1);
  (void)cmp.decide(-1.0);
  EXPECT_EQ(cmp.last_decision(), -1);
}

// decide_planned must be bit-identical to decide for any input sequence —
// including when metastable events force the plan to resync mid-frame.
void expect_planned_matches_scalar(const ComparatorConfig& c,
                                   std::uint64_t seed, int frames,
                                   std::size_t frame_len) {
  Comparator scalar{c, tono::Rng{seed}};
  Comparator planned{c, tono::Rng{seed}};
  std::vector<double> noise(frame_len);
  tono::Rng inputs{seed ^ 0xABCDu};
  for (int f = 0; f < frames; ++f) {
    planned.plan(noise.data(), frame_len);
    for (std::size_t i = 0; i < frame_len; ++i) {
      const double v = inputs.uniform(-0.2, 0.2);
      ASSERT_EQ(scalar.decide(v), planned.decide_planned(v))
          << "frame=" << f << " i=" << i;
    }
  }
}

TEST(Comparator, PlannedMatchesScalarWithNoise) {
  ComparatorConfig c;  // defaults: noise on, 10 µV metastable band
  expect_planned_matches_scalar(c, 2025, 8, 128);
}

TEST(Comparator, PlannedMatchesScalarUnderHeavyMetastability) {
  ComparatorConfig c;
  c.metastable_band_v = 0.15;  // most decisions inside the band → resyncs
  expect_planned_matches_scalar(c, 7, 8, 128);
}

TEST(Comparator, PlannedMatchesScalarWithNoiseDisabled) {
  ComparatorConfig c = quiet();
  c.metastable_band_v = 0.05;  // Bernoulli draws straight off the stream
  expect_planned_matches_scalar(c, 11, 4, 64);
}

TEST(Comparator, PlannedMatchesScalarWithHysteresisAndOffset) {
  ComparatorConfig c;
  c.offset_v = 5e-3;
  c.hysteresis_v = 20e-3;
  c.metastable_band_v = 0.02;
  expect_planned_matches_scalar(c, 99, 6, 128);
}

}  // namespace
}  // namespace tono::analog
