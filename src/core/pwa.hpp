// pwa.hpp — pulse wave analysis: per-beat morphology features.
//
// Once a continuous calibrated waveform exists (the capability the paper
// demonstrates), clinically interesting quantities beyond systolic/diastolic
// become available from the morphology: maximum upstroke slope (dP/dt max,
// a contractility surrogate), the dicrotic notch (ejection duration), and
// the augmentation of the reflected wave (arterial-stiffness surrogate).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "src/core/beat_detection.hpp"

namespace tono::core {

/// Morphology features of one beat.
struct PulseWaveFeatures {
  double pulse_pressure{0.0};          ///< systolic − diastolic
  double dpdt_max{0.0};                ///< max upstroke slope [units/s]
  double dpdt_max_time_s{0.0};
  std::optional<double> notch_time_s;  ///< dicrotic notch (if found)
  std::optional<double> ejection_fraction_of_beat;  ///< foot→notch / interval
  std::optional<double> augmentation_index;  ///< (P2 − dia)/(P1 − dia), stiffness proxy
};

struct PulseWaveSummary {
  std::vector<PulseWaveFeatures> per_beat;
  double mean_dpdt_max{0.0};
  double mean_pulse_pressure{0.0};
  std::optional<double> mean_ejection_fraction;
  std::optional<double> mean_augmentation_index;
};

class PulseWaveAnalyzer {
 public:
  explicit PulseWaveAnalyzer(double sample_rate_hz = 1000.0);

  /// Extracts features for every beat found by `beats` over `samples`
  /// (`t0_s` must match the one passed to the beat detector).
  [[nodiscard]] PulseWaveSummary analyze(std::span<const double> samples,
                                         const BeatAnalysis& beats,
                                         double t0_s = 0.0) const;

  [[nodiscard]] double sample_rate_hz() const noexcept { return fs_; }

 private:
  double fs_;
};

}  // namespace tono::core
