# Empty compiler generated dependencies file for test_tissue.
# This may be replaced when dependencies are built.
