// E8 / §4 — the paper's future-work items, implemented.
//
// "Future work will include an improvement of the resolution during blood
// pressure measurements … by adjusting the feedback capacitors of the first
// modulator stage. Also an increased conversion rate would be desirable.
// Field tests have to be performed in order [to] evaluate reliability and
// stability."
//
// Three corresponding sub-experiments:
//   (a) closed-loop feedback-capacitor auto-ranging during a session,
//   (b) applanation hold-down optimization (field-usability prerequisite),
//   (c) stability characterization of the sensor output: Welch noise floor
//       and Allan deviation (white-noise region vs drift).
#include <cmath>
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/common/statistics.hpp"
#include "src/core/autorange.hpp"
#include "src/core/holddown.hpp"
#include "src/core/monitor.hpp"
#include "src/core/quality.hpp"
#include "src/dsp/noise_analysis.hpp"

namespace {

using namespace tono;

void autorange_demo() {
  std::cout << "\n--- (a) Feedback-capacitor auto-ranging ---\n";
  auto chip = core::ChipConfig::paper_chip();
  chip.modulator.c_fb1_f = 50e-15;  // start deliberately coarse
  core::BloodPressureMonitor mon{chip, core::WristModel{}};
  auto& pipe = mon.pipeline();
  auto field = mon.contact_field();

  core::FeedbackAutoRanger ranger{core::AutoRangeConfig{}, 0};
  TextTable t{"Auto-ranging trace (2 s windows)"};
  t.set_header({"window", "C_fb [fF]", "peak |value|", "action"});
  for (int w = 0; w < 8; ++w) {
    const auto samples = pipe.acquire(field, 2000);
    std::vector<double> values;
    for (const auto& s : samples) values.push_back(s.value);
    double peak = 0.0;
    for (double v : values) peak = std::max(peak, std::abs(v));
    const double cfb_before = ranger.current_capacitance_f();
    const auto d = ranger.update(values);
    if (d.changed) (void)pipe.set_feedback_capacitor(ranger.current_capacitance_f());
    t.add_row({std::to_string(w), format_double(cfb_before * 1e15, 0),
               format_double(peak, 4),
               d.changed ? "-> " + format_double(ranger.current_capacitance_f() * 1e15, 0) +
                               " fF"
                         : "hold"});
  }
  t.print(std::cout);
  std::cout << "-> the controller walks from 50 fF to the finest range the\n"
               "   tonometric swing allows, multiplying codes-per-mmHg (§4).\n";
}

void holddown_demo() {
  std::cout << "\n--- (b) Applanation hold-down optimization ---\n";
  core::WristModel wrist;
  core::HoldDownOptimizer opt;
  const auto r = opt.optimize(core::ChipConfig::paper_chip(), wrist);
  TextTable t{"Hold-down sweep (pulsation amplitude vs applied pressure)"};
  t.set_header({"hold-down [mmHg]", "pulsation [FS]"});
  for (const auto& [hd, amp] : r.profile) {
    t.add_row({format_double(hd, 1), format_double(amp, 5)});
  }
  t.print(std::cout);
  std::cout << "optimum: " << format_double(r.best_mmhg, 1)
            << " mmHg (tissue model applanation point: "
            << format_double(wrist.tissue.optimal_hold_down_mmhg, 1) << " mmHg)\n";
}

void stability_demo() {
  std::cout << "\n--- (c) Reliability/stability: noise floor and Allan deviation ---\n";
  // Static contact pressure → the output stream is pure sensor+converter
  // noise and drift.
  core::AcquisitionPipeline pipe{core::ChipConfig::paper_chip()};
  const double p = 10.0 * 133.322;  // small static load
  const auto samples = pipe.acquire_uniform([=](double) { return p; }, 60000);
  std::vector<double> values;
  values.reserve(samples.size());
  for (const auto& s : samples) values.push_back(s.value);
  // Drop the startup transient.
  values.erase(values.begin(), values.begin() + 200);

  const auto psd = dsp::welch_psd(values, 1000.0);
  TextTable nf{"Output noise floor (Welch, 60 s static load)"};
  nf.set_header({"band [Hz]", "integrated noise [LSB rms]"});
  for (double hi : {1.0, 10.0, 100.0, 500.0}) {
    const double pwr = dsp::integrate_psd(psd, 0.5, hi);
    nf.add_row({"0.5-" + format_double(hi, 0),
                format_double(std::sqrt(pwr) * 2048.0, 2)});
  }
  nf.print(std::cout);

  const auto adev = dsp::allan_deviation(values, 1000.0, 0.002);
  SeriesWriter s{"allan_deviation", "tau_s", "adev_lsb"};
  TextTable at{"Allan deviation of the static output"};
  at.set_header({"tau [s]", "ADEV [LSB]"});
  for (const auto& pnt : adev) {
    at.add_row({format_double(pnt.tau_s, 3), format_double(pnt.adev * 2048.0, 3)});
    s.add(pnt.tau_s, pnt.adev * 2048.0);
  }
  at.print(std::cout);
  s.write_csv(std::cout);
  std::cout << "-> 1/sqrt(tau) at short tau (white converter noise), flattening\n"
               "   or rising at long tau (reference/membrane drift) — the\n"
               "   stability picture the paper's field tests would measure.\n";
}

void thermal_demo() {
  std::cout << "\n--- (d) Body-contact thermal drift and recalibration ---\n";
  core::WristModel wrist;
  wrist.enable_thermal_drift = true;
  wrist.thermal_tau_s = 30.0;
  core::BloodPressureMonitor mon{core::ChipConfig::paper_chip(), wrist};
  (void)mon.calibrate(10.0);
  TextTable t{"Baseline drift while the die warms (tempco 30 ppm/K, skin 307 K)"};
  t.set_header({"window [s]", "die T [K]", "mean dia [mmHg]", "MAP error [mmHg]"});
  for (int w = 0; w < 4; ++w) {
    const auto rep = mon.monitor(20.0);
    t.add_row({format_double(rep.time_s.front(), 0) + "-" +
                   format_double(rep.time_s.back(), 0),
               format_double(mon.pipeline().temperature_k(), 2),
               format_double(rep.beats.mean_diastolic, 1),
               format_double(rep.map_error_mmhg, 2)});
  }
  // One recalibration absorbs the accumulated drift.
  (void)mon.calibrate(10.0);
  const auto rep = mon.monitor(20.0);
  t.add_row({"after recalibration", format_double(mon.pipeline().temperature_k(), 2),
             format_double(rep.beats.mean_diastolic, 1),
             format_double(rep.map_error_mmhg, 2)});
  t.print(std::cout);
  std::cout << "-> the uncompensated tempco costs several mmHg over the warm-up\n"
               "   transient; periodic cuff recalibration (or an on-chip\n"
               "   temperature reference) restores accuracy — a concrete answer\n"
               "   to the paper's reliability/stability question.\n";
}

}  // namespace

int main() {
  bench::print_header("E8 / §4", "Future-work features: auto-ranging, applanation, stability");
  autorange_demo();
  holddown_demo();
  stability_demo();
  thermal_demo();
  return 0;
}
