// tonosim_cli — command-line driver for the simulated sensor system.
//
//   tonosim_cli monitor --duration 30 --sys 120 --dia 80 --hr 72
//               [--artifacts] [--thermal] [--csv waveform.csv]
//   tonosim_cli adc --amp-dbfs -2 --freq 15.625
//   tonosim_cli membrane --pressure-kpa 10
//   tonosim_cli localize --offset-mm 0.3 --cols 8
//
// Each subcommand drives the same public API the examples use and prints a
// compact report; `monitor --csv` dumps the calibrated waveform for external
// plotting.
#include <cmath>
#include <fstream>
#include <iostream>
#include <numbers>
#include <string>

#include "src/common/cli.hpp"
#include "src/common/metrics.hpp"
#include "src/common/units.hpp"
#include "src/core/monitor.hpp"
#include "src/dsp/spectrum.hpp"

namespace {

using namespace tono;

/// Writes a JSONL snapshot of the full instrument catalogue to `path`
/// (no-op for an empty path). Pre-registering the standard set means the
/// snapshot covers every subsystem, zero-valued where the run did not
/// touch it — consumers can rely on the keys being present.
int write_metrics_snapshot(const std::string& path) {
  if (path.empty()) return 0;
  metrics::register_standard_instruments();
  if (!metrics::Registry::global().write_jsonl_file(path)) {
    std::cerr << "cannot write metrics to " << path << "\n";
    return 1;
  }
  std::cout << "wrote metrics snapshot to " << path << "\n";
  return 0;
}

int cmd_monitor(int argc, const char* const* argv) {
  ArgParser args{"tonosim_cli monitor", "run a full monitoring session"};
  args.add_double("duration", "monitoring duration [s]", 30.0);
  args.add_double("sys", "patient systolic [mmHg]", 120.0);
  args.add_double("dia", "patient diastolic [mmHg]", 80.0);
  args.add_double("hr", "heart rate [bpm]", 72.0);
  args.add_flag("artifacts", "enable motion artefacts");
  args.add_flag("thermal", "enable body-contact thermal drift");
  args.add_string("csv", "write the calibrated waveform to this CSV file", "");
  args.add_string("metrics", "write a JSONL runtime-metrics snapshot to this file", "");
  if (!args.parse(argc, argv)) {
    std::cerr << (args.help_requested() ? args.help_text() : args.error() + "\n");
    return args.help_requested() ? 0 : 2;
  }

  core::WristModel wrist;
  wrist.pulse.systolic_mmhg = args.double_value("sys");
  wrist.pulse.diastolic_mmhg = args.double_value("dia");
  wrist.pulse.heart_rate_bpm = args.double_value("hr");
  wrist.enable_artifacts = args.flag("artifacts");
  wrist.enable_thermal_drift = args.flag("thermal");

  core::BloodPressureMonitor mon{core::ChipConfig::paper_chip(), wrist};
  const auto scan = mon.localize();
  const auto cuff = mon.calibrate(12.0);
  const auto rep = mon.monitor(args.double_value("duration"));

  std::cout << "selected element: (" << scan.best_row << "," << scan.best_col << ")\n"
            << "cuff calibration: " << cuff.systolic_mmhg << "/" << cuff.diastolic_mmhg
            << " mmHg\n"
            << "beats: " << rep.beats.beats.size() << ", HR "
            << rep.beats.heart_rate_bpm << " bpm, SQI " << rep.quality.sqi << "\n"
            << "estimate: " << rep.beats.mean_systolic << "/"
            << rep.beats.mean_diastolic << " mmHg (MAP " << rep.beats.mean_map << ")\n"
            << "errors vs truth: sys " << rep.systolic_error_mmhg << ", dia "
            << rep.diastolic_error_mmhg << ", MAP " << rep.map_error_mmhg << " mmHg\n";

  const std::string csv = args.string_value("csv");
  if (!csv.empty()) {
    std::ofstream out{csv};
    if (!out) {
      std::cerr << "cannot open " << csv << "\n";
      return 1;
    }
    out << "time_s,pressure_mmhg\n";
    for (std::size_t i = 0; i < rep.waveform_mmhg.size(); ++i) {
      out << rep.time_s[i] << ',' << rep.waveform_mmhg[i] << '\n';
    }
    std::cout << "wrote " << rep.waveform_mmhg.size() << " samples to " << csv << "\n";
  }
  return write_metrics_snapshot(args.string_value("metrics"));
}

int cmd_adc(int argc, const char* const* argv) {
  ArgParser args{"tonosim_cli adc", "single-tone ADC characterization"};
  args.add_double("amp-dbfs", "input amplitude [dBFS]", -2.0);
  args.add_double("freq", "target input frequency [Hz]", 15.625);
  args.add_string("metrics", "write a JSONL runtime-metrics snapshot to this file", "");
  if (!args.parse(argc, argv)) {
    std::cerr << (args.help_requested() ? args.help_text() : args.error() + "\n");
    return args.help_requested() ? 0 : 2;
  }
  analog::ModulatorConfig mc;
  analog::DeltaSigmaModulator mod{mc};
  dsp::DecimationChain chain{dsp::DecimationConfig{}};
  const std::size_t n_out = 8192;
  const double f = dsp::coherent_frequency(args.double_value("freq"), 1000.0, n_out);
  const double amp = std::pow(10.0, args.double_value("amp-dbfs") / 20.0);
  const auto bits = mod.run_voltage(
      [&](double t) {
        return amp * mc.vref_v * std::sin(2.0 * std::numbers::pi * f * t);
      },
      (n_out + 300) * 128);
  std::vector<int> ints(bits.begin(), bits.end());
  const auto vals = chain.process_values(ints);
  std::vector<double> rec(vals.end() - static_cast<long>(n_out), vals.end());
  dsp::SpectrumConfig sc;
  sc.sample_rate_hz = 1000.0;
  const auto a = dsp::analyze_tone(rec, sc);
  std::cout << "f = " << a.fundamental_hz << " Hz @ " << a.fundamental_dbfs
            << " dBFS\nSNR " << a.snr_db << " dB | SNDR " << a.sndr_db << " dB | ENOB "
            << a.enob_bits << " bit | THD " << a.thd_db << " dB\n";
  return write_metrics_snapshot(args.string_value("metrics"));
}

int cmd_membrane(int argc, const char* const* argv) {
  ArgParser args{"tonosim_cli membrane", "transducer operating point"};
  args.add_double("pressure-kpa", "contact pressure [kPa]", 10.0);
  if (!args.parse(argc, argv)) {
    std::cerr << (args.help_requested() ? args.help_text() : args.error() + "\n");
    return args.help_requested() ? 0 : 2;
  }
  const mems::PressureTransducer t{mems::TransducerConfig{}};
  const double p = units::kpa_to_pa(args.double_value("pressure-kpa"));
  std::cout << "pressure: " << units::pa_to_mmhg(p) << " mmHg\n"
            << "deflection: " << t.deflection(p) * 1e9 << " nm\n"
            << "capacitance: " << units::f_to_ff(t.capacitance(p)) << " fF (rest "
            << units::f_to_ff(t.bias_capacitance()) << " fF)\n"
            << "sensitivity: " << t.sensitivity() * 1e18 << " aF/Pa\n";
  return 0;
}

int cmd_localize(int argc, const char* const* argv) {
  ArgParser args{"tonosim_cli localize", "array scan over a displaced artery"};
  args.add_double("offset-mm", "device placement offset [mm]", 0.0);
  args.add_int("cols", "array columns", 8);
  args.add_string("metrics", "write a JSONL runtime-metrics snapshot to this file", "");
  if (!args.parse(argc, argv)) {
    std::cerr << (args.help_requested() ? args.help_text() : args.error() + "\n");
    return args.help_requested() ? 0 : 2;
  }
  auto chip = core::ChipConfig::paper_chip();
  chip.array.rows = 1;
  chip.array.cols = static_cast<std::size_t>(args.int_value("cols"));
  chip.mux.rows = 1;
  chip.mux.cols = chip.array.cols;
  core::WristModel wrist;
  wrist.placement_offset_m = args.double_value("offset-mm") * 1e-3;
  wrist.tissue.lateral_sigma_m = 0.5e-3;
  core::BloodPressureMonitor mon{chip, wrist};
  const auto scan = mon.localize();
  for (const auto& e : scan.elements) {
    std::cout << "col " << e.col << ": " << e.amplitude
              << (e.col == scan.best_col ? "  <= selected" : "") << "\n";
  }
  return write_metrics_snapshot(args.string_value("metrics"));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string usage =
      "usage: tonosim_cli <monitor|adc|membrane|localize> [options]\n"
      "       tonosim_cli <subcommand> --help\n";
  if (argc < 2) {
    std::cerr << usage;
    return 2;
  }
  const std::string cmd = argv[1];
  // Shift the subcommand out of the argument list.
  if (cmd == "monitor") return cmd_monitor(argc - 1, argv + 1);
  if (cmd == "adc") return cmd_adc(argc - 1, argv + 1);
  if (cmd == "membrane") return cmd_membrane(argc - 1, argv + 1);
  if (cmd == "localize") return cmd_localize(argc - 1, argv + 1);
  std::cerr << "unknown subcommand '" << cmd << "'\n" << usage;
  return 2;
}
