file(REMOVE_RECURSE
  "CMakeFiles/test_biquad.dir/test_biquad.cpp.o"
  "CMakeFiles/test_biquad.dir/test_biquad.cpp.o.d"
  "test_biquad"
  "test_biquad.pdb"
  "test_biquad[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_biquad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
