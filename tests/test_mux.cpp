// Tests for the analog row/column multiplexer.
#include "src/analog/mux.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tono::analog {
namespace {

TEST(AnalogMux, DefaultSelectionIsOrigin) {
  AnalogMux mux{MuxConfig{}};
  EXPECT_EQ(mux.selected_row(), 0u);
  EXPECT_EQ(mux.selected_col(), 0u);
  EXPECT_EQ(mux.selected_index(), 0u);
}

TEST(AnalogMux, SelectUpdatesIndices) {
  AnalogMux mux{MuxConfig{}};
  mux.select(1, 1);
  EXPECT_EQ(mux.selected_row(), 1u);
  EXPECT_EQ(mux.selected_col(), 1u);
  EXPECT_EQ(mux.selected_index(), 3u);
}

TEST(AnalogMux, RejectsOutOfRange) {
  AnalogMux mux{MuxConfig{}};
  EXPECT_THROW(mux.select(2, 0), std::out_of_range);
  EXPECT_THROW(mux.select(0, 2), std::out_of_range);
}

TEST(AnalogMux, LargerArraysSupported) {
  MuxConfig cfg;
  cfg.rows = 8;
  cfg.cols = 8;
  AnalogMux mux{cfg};
  EXPECT_NO_THROW(mux.select(7, 7));
  EXPECT_EQ(mux.selected_index(), 63u);
}

TEST(AnalogMux, SettlingTauIsRonTimesC) {
  MuxConfig cfg;
  cfg.on_resistance_ohm = 2000.0;
  cfg.node_capacitance_f = 150e-15;
  AnalogMux mux{cfg};
  EXPECT_NEAR(mux.settling_tau_s(), 3e-10, 1e-16);
}

TEST(AnalogMux, ObservedCapacitanceConvergesToTarget) {
  AnalogMux mux{MuxConfig{}};
  mux.note_preswitch_capacitance(120e-15);
  const double target = 100e-15;
  const double after = mux.observed_capacitance(target, 100.0 * mux.settling_tau_s());
  EXPECT_NEAR(after, target, 1e-21);
}

TEST(AnalogMux, ObservedCapacitanceStartsNearPrevious) {
  AnalogMux mux{MuxConfig{}};
  mux.note_preswitch_capacitance(120e-15);
  const double at_zero = mux.observed_capacitance(100e-15, 0.0);
  // previous + injection at t = 0.
  EXPECT_NEAR(at_zero, 120e-15 + MuxConfig{}.charge_injection_c / MuxConfig{}.excitation_v,
              1e-18);
}

TEST(AnalogMux, SettlingIsExponential) {
  AnalogMux mux{MuxConfig{}};
  mux.note_preswitch_capacitance(200e-15);
  const double target = 100e-15;
  const double tau = mux.settling_tau_s();
  const double e1 = mux.observed_capacitance(target, tau) - target;
  const double e2 = mux.observed_capacitance(target, 2.0 * tau) - target;
  EXPECT_NEAR(e2 / e1, std::exp(-1.0), 1e-6);
}

TEST(AnalogMux, SettlingTimeForRelativeError) {
  AnalogMux mux{MuxConfig{}};
  EXPECT_NEAR(mux.settling_time_s(std::exp(-5.0)), 5.0 * mux.settling_tau_s(), 1e-15);
  EXPECT_DOUBLE_EQ(mux.settling_time_s(0.0), 0.0);
  EXPECT_DOUBLE_EQ(mux.settling_time_s(1.5), 0.0);
}

TEST(AnalogMux, AnalogSettlingFastRelativeToClock) {
  // The paper notes the *converter bandwidth* limits element switching; the
  // raw analog mux path settles in nanoseconds versus the 7.8 µs clock.
  AnalogMux mux{MuxConfig{}};
  const double clock_period = 1.0 / 128000.0;
  EXPECT_LT(mux.settling_time_s(1e-6), 0.01 * clock_period);
}

TEST(AnalogMux, NegativeTimeTreatedAsZero) {
  AnalogMux mux{MuxConfig{}};
  mux.note_preswitch_capacitance(200e-15);
  EXPECT_DOUBLE_EQ(mux.observed_capacitance(100e-15, -1.0),
                   mux.observed_capacitance(100e-15, 0.0));
}

TEST(AnalogMux, RejectsBadConfig) {
  MuxConfig bad;
  bad.rows = 0;
  EXPECT_THROW((AnalogMux{bad}), std::invalid_argument);
  MuxConfig bad2;
  bad2.on_resistance_ohm = 0.0;
  EXPECT_THROW((AnalogMux{bad2}), std::invalid_argument);
}

}  // namespace
}  // namespace tono::analog
