// Tests for the vectorized lockstep modulator bank and the parallel array
// readout. The bank's SIMD kernel (AVX2/NEON, runtime-dispatched) must be
// invisible in every value these tests check: lane == solo bit-identity is
// asserted under whatever dispatch the build/CPU resolves, and dedicated
// tests pin vector == forced-scalar equality explicitly.
#include "src/analog/modulator_bank.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "src/common/checkpoint.hpp"
#include "src/common/simd.hpp"
#include "src/core/chip_config.hpp"
#include "src/core/pipeline.hpp"

namespace tono::analog {
namespace {

// The bank's core contract: lane k's bitstream and end state are
// bit-identical to running that lane's modulator alone.
void expect_lanes_match_solo(const std::vector<ModulatorConfig>& configs,
                             const std::vector<double>& c_sense,
                             const std::vector<double>& c_ref, std::size_t n) {
  const std::size_t lanes = configs.size();
  ModulatorBank bank{configs};
  std::vector<int> bank_bits(lanes * n);
  bank.step_capacitive_block(c_sense.data(), c_ref.data(), bank_bits.data(), n);
  for (std::size_t k = 0; k < lanes; ++k) {
    DeltaSigmaModulator solo{configs[k]};
    std::vector<int> want(n);
    solo.step_capacitive_block(c_sense[k], c_ref[k], want.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(want[i], bank_bits[k * n + i]) << "lane=" << k << " i=" << i;
    }
    EXPECT_EQ(solo.integrator1_v(), bank.lane(k).integrator1_v()) << k;
    EXPECT_EQ(solo.integrator2_v(), bank.lane(k).integrator2_v()) << k;
    EXPECT_EQ(solo.time_s(), bank.lane(k).time_s()) << k;
  }
}

TEST(ModulatorBank, LanesMatchIndependentModulators) {
  std::vector<ModulatorConfig> configs(4);
  for (std::size_t k = 0; k < configs.size(); ++k) configs[k].seed = 100 + k * 7919;
  const std::vector<double> c_sense{95e-15, 104e-15, 112e-15, 99e-15};
  const std::vector<double> c_ref(4, 100e-15);
  expect_lanes_match_solo(configs, c_sense, c_ref, 1280);
}

TEST(ModulatorBank, HeterogeneousLaneConfigs) {
  // Lanes that disagree in every planning-relevant way: noise sources on or
  // off, flicker, loop order, metastability — one frame schedule must serve
  // all of them.
  std::vector<ModulatorConfig> configs(4);
  configs[0].seed = 1;
  configs[1].seed = 2;
  configs[1].enable_ktc_noise = false;
  configs[1].ref_noise_vrms = 0.0;
  configs[2].seed = 3;
  configs[2].order = 1;
  configs[2].opamp1.flicker_corner_hz = 1000.0;
  configs[3].seed = 4;
  configs[3].comparator.metastable_band_v = 0.4;
  const std::vector<double> c_sense{90e-15, 118e-15, 101e-15, 107e-15};
  const std::vector<double> c_ref(4, 100e-15);
  expect_lanes_match_solo(configs, c_sense, c_ref, 640);
}

TEST(ModulatorBank, OddBlockLengths) {
  std::vector<ModulatorConfig> configs(2);
  configs[1].seed = 77;
  const std::vector<double> c_sense{103e-15, 97e-15};
  const std::vector<double> c_ref(2, 100e-15);
  for (std::size_t n : {1u, 127u, 129u, 300u}) {
    expect_lanes_match_solo(configs, c_sense, c_ref, n);
  }
}

TEST(ModulatorBank, ConvenienceSeedingKeepsLaneZeroAndDecorrelates) {
  ModulatorConfig base;
  ModulatorBank bank{base, 3};
  EXPECT_EQ(bank.lanes(), 3u);
  EXPECT_EQ(bank.lane(0).config().seed, base.seed);
  EXPECT_NE(bank.lane(1).config().seed, base.seed);
  EXPECT_NE(bank.lane(1).config().seed, bank.lane(2).config().seed);
  // Decorrelated seeds ⇒ different bitstreams for identical inputs.
  const std::vector<double> c_sense(3, 108e-15);
  const std::vector<double> c_ref(3, 100e-15);
  std::vector<int> bits(3 * 512);
  bank.step_capacitive_block(c_sense.data(), c_ref.data(), bits.data(), 512);
  int diff01 = 0;
  int diff12 = 0;
  for (std::size_t i = 0; i < 512; ++i) {
    diff01 += bits[i] != bits[512 + i];
    diff12 += bits[512 + i] != bits[1024 + i];
  }
  EXPECT_GT(diff01, 0);
  EXPECT_GT(diff12, 0);
}

TEST(ModulatorBank, DefaultReferenceBranchMatchesScalarOverload) {
  ModulatorConfig base;
  base.cap_mismatch_sigma = 0.01;  // make the ref-mismatch branch visible
  ModulatorBank bank{base, 2};
  const std::vector<double> c_sense{102e-15, 102e-15};
  std::vector<int> bank_bits(2 * 256);
  bank.step_capacitive_block(c_sense.data(), bank_bits.data(), 256);
  for (std::size_t k = 0; k < 2; ++k) {
    DeltaSigmaModulator solo{bank.lane(k).config()};
    std::vector<int> want(256);
    for (auto& b : want) b = solo.step_capacitive(c_sense[k]);
    for (std::size_t i = 0; i < 256; ++i) {
      ASSERT_EQ(want[i], bank_bits[k * 256 + i]) << "lane=" << k << " i=" << i;
    }
  }
}

TEST(ModulatorBank, ResetRestoresEveryLane) {
  ModulatorConfig base;
  ModulatorBank bank{base, 2};
  const std::vector<double> c_sense{105e-15, 95e-15};
  const std::vector<double> c_ref(2, 100e-15);
  std::vector<int> first(2 * 384);
  bank.step_capacitive_block(c_sense.data(), c_ref.data(), first.data(), 384);
  bank.reset();
  // reset() restores loop state but not the rng streams (same contract as
  // DeltaSigmaModulator::reset) — compare against a solo run doing the same.
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_EQ(bank.lane(k).integrator1_v(), 0.0);
    EXPECT_EQ(bank.lane(k).time_s(), 0.0);
  }
}

TEST(ModulatorBank, RejectsEmptyBank) {
  EXPECT_THROW((ModulatorBank{std::vector<ModulatorConfig>{}}),
               std::invalid_argument);
}

TEST(ModulatorBank, LaneCountSweepWithMidRunFaultMasking) {
  // Every lane count from a lone lane through two-packets-and-a-remainder
  // (on AVX2: 9 = 2×4 + 1), with one lane masked out mid-run and re-enabled
  // later. Each enabled phase must be bit-identical to the solo modulator
  // run through the same block sequence; the masked lane must be untouched.
  const std::size_t n1 = 200;
  const std::size_t n2 = 300;
  const std::size_t n3 = 150;
  for (std::size_t lanes = 1; lanes <= 9; ++lanes) {
    std::vector<ModulatorConfig> configs(lanes);
    std::vector<double> c_sense(lanes);
    std::vector<double> c_ref(lanes, 100e-15);
    for (std::size_t k = 0; k < lanes; ++k) {
      configs[k].seed = 500 + 31 * k;
      c_sense[k] = (92.0 + 3.0 * static_cast<double>(k)) * 1e-15;
    }
    ModulatorBank bank{configs};
    std::vector<DeltaSigmaModulator> solos;
    for (const auto& c : configs) solos.emplace_back(c);
    const std::size_t dead = lanes / 2;

    const auto run_and_check = [&](std::size_t n, std::size_t masked_lane,
                                   bool masked) {
      std::vector<int> got(lanes * n, -12345);
      bank.step_capacitive_block(c_sense.data(), c_ref.data(), got.data(), n);
      std::vector<int> want(n);
      for (std::size_t k = 0; k < lanes; ++k) {
        if (masked && k == masked_lane) {
          for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(got[k * n + i], -12345)
                << "masked lane written, lanes=" << lanes << " i=" << i;
          }
          continue;
        }
        solos[k].step_capacitive_block(c_sense[k], c_ref[k], want.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(want[i], got[k * n + i])
              << "lanes=" << lanes << " lane=" << k << " i=" << i;
        }
        ASSERT_EQ(solos[k].integrator1_v(), bank.lane(k).integrator1_v()) << k;
        ASSERT_EQ(solos[k].integrator2_v(), bank.lane(k).integrator2_v()) << k;
        ASSERT_EQ(solos[k].time_s(), bank.lane(k).time_s()) << k;
        ASSERT_EQ(solos[k].clip_count(), bank.lane(k).clip_count()) << k;
      }
    };

    run_and_check(n1, 0, false);
    bank.set_lane_enabled(dead, false);
    ASSERT_EQ(bank.enabled_lanes(), lanes - 1);
    run_and_check(n2, dead, true);
    // The masked lane froze with its state and streams exactly where solo
    // left them after n1 clocks — re-enabling resumes bit-identically (the
    // solo twin simply skipped the n2 block).
    bank.set_lane_enabled(dead, true);
    run_and_check(n3, 0, false);
  }
}

TEST(ModulatorBank, VectorAndForcedScalarBanksBitIdentical) {
  // The escape hatch contract: a bank constructed under the forced-scalar
  // dispatch produces byte-identical bitstreams and end state to one built
  // under the default (possibly SIMD) dispatch.
  const std::size_t lanes = 8;
  const std::size_t n = 640;
  std::vector<ModulatorConfig> configs(lanes);
  std::vector<double> c_sense(lanes);
  std::vector<double> c_ref(lanes, 100e-15);
  for (std::size_t k = 0; k < lanes; ++k) {
    configs[k].seed = 9000 + 17 * k;
    c_sense[k] = (95.0 + 2.0 * static_cast<double>(k)) * 1e-15;
  }
  const simd::Level ambient = simd::active_level();
  ModulatorBank vec_bank{configs};
  EXPECT_EQ(vec_bank.simd_level(), ambient);
  std::vector<int> vec_bits(lanes * n);
  vec_bank.step_capacitive_block(c_sense.data(), c_ref.data(), vec_bits.data(),
                                 n);
  simd::force_active_level(simd::Level::kScalar);
  ModulatorBank sc_bank{configs};
  simd::force_active_level(ambient);
  EXPECT_EQ(sc_bank.simd_width(), 1u);
  std::vector<int> sc_bits(lanes * n);
  sc_bank.step_capacitive_block(c_sense.data(), c_ref.data(), sc_bits.data(), n);
  for (std::size_t k = 0; k < lanes; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(vec_bits[k * n + i], sc_bits[k * n + i])
          << "lane=" << k << " i=" << i;
    }
    EXPECT_EQ(vec_bank.lane(k).integrator1_v(), sc_bank.lane(k).integrator1_v());
    EXPECT_EQ(vec_bank.lane(k).integrator2_v(), sc_bank.lane(k).integrator2_v());
    EXPECT_EQ(vec_bank.lane(k).time_s(), sc_bank.lane(k).time_s());
  }
}

TEST(ModulatorBank, MetastableHeavyPacketMatchesSolo) {
  // A wide metastable band makes the comparator's scalar resync fire
  // constantly, exercising the kernel's masked drop-out/rejoin path and the
  // transposed-plan tail rewrite on every few clocks — in a full packet, so
  // the vector kernel (when dispatched) cannot avoid it.
  std::vector<ModulatorConfig> configs(4);
  std::vector<double> c_sense{96e-15, 103e-15, 109e-15, 99e-15};
  std::vector<double> c_ref(4, 100e-15);
  for (std::size_t k = 0; k < 4; ++k) {
    configs[k].seed = 333 + 11 * k;
    configs[k].comparator.metastable_band_v = 0.5;
  }
  expect_lanes_match_solo(configs, c_sense, c_ref, 768);
}

TEST(ModulatorBank, PartialSettlePacketMatchesSolo) {
  // A starved op-amp (low GBW) keeps integrator steps above the provable
  // full-settle threshold, so the kernel's settle() escape runs per lane per
  // clock — the worst case for the masked scalar path.
  std::vector<ModulatorConfig> configs(4);
  std::vector<double> c_sense{94e-15, 102e-15, 111e-15, 98e-15};
  std::vector<double> c_ref(4, 100e-15);
  for (std::size_t k = 0; k < 4; ++k) {
    configs[k].seed = 777 + 23 * k;
    configs[k].opamp1.gbw_hz = 300e3;
    configs[k].opamp2.gbw_hz = 300e3;
  }
  expect_lanes_match_solo(configs, c_sense, c_ref, 512);
}

TEST(ModulatorBank, CheckpointRoundTripMidRunUnderSimdLayout) {
  // Serialize after 1.5 frames plus a masked lane, restore into a fresh
  // bank, and continue both: the restored bank must replay the original's
  // future bit-for-bit, including the enable mask and the SIMD packet
  // regrouping it implies.
  const std::size_t lanes = 8;
  std::vector<ModulatorConfig> configs(lanes);
  std::vector<double> c_sense(lanes);
  std::vector<double> c_ref(lanes, 100e-15);
  for (std::size_t k = 0; k < lanes; ++k) {
    configs[k].seed = 4242 + 101 * k;
    c_sense[k] = (93.0 + 2.5 * static_cast<double>(k)) * 1e-15;
  }
  ModulatorBank original{configs};
  std::vector<int> scratch(lanes * 200);
  original.step_capacitive_block(c_sense.data(), c_ref.data(), scratch.data(),
                                 200);
  original.set_lane_enabled(5, false);
  original.step_capacitive_block(c_sense.data(), c_ref.data(), scratch.data(),
                                 100);

  CheckpointWriter out;
  original.serialize(out);
  const auto blob = out.finish(1);
  ModulatorBank restored{configs};
  CheckpointReader in{blob};
  in.require_version(1);
  restored.restore(in);
  EXPECT_NO_THROW(in.expect_end());
  EXPECT_FALSE(restored.lane_enabled(5));
  EXPECT_EQ(restored.enabled_lanes(), lanes - 1);

  const std::size_t n = 300;
  std::vector<int> want(lanes * n, -1);
  std::vector<int> got(lanes * n, -1);
  original.step_capacitive_block(c_sense.data(), c_ref.data(), want.data(), n);
  restored.step_capacitive_block(c_sense.data(), c_ref.data(), got.data(), n);
  for (std::size_t k = 0; k < lanes; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(want[k * n + i], got[k * n + i]) << "lane=" << k << " i=" << i;
    }
    EXPECT_EQ(original.lane(k).integrator1_v(), restored.lane(k).integrator1_v());
    EXPECT_EQ(original.lane(k).time_s(), restored.lane(k).time_s());
  }
}

TEST(ModulatorBank, CheckpointRejectsCorruptEnableFlag) {
  ModulatorConfig base;
  ModulatorBank bank{base, 2};
  CheckpointWriter out;
  out.section("modulator_bank");
  out.size(2);
  out.u8(1);
  out.u8(7);  // not a boolean
  const auto blob = out.finish(1);
  CheckpointReader in{blob};
  in.require_version(1);
  EXPECT_THROW(bank.restore(in), CheckpointError);
}

TEST(ArrayAcquisition, LaneZeroMatchesSingleConverterReference) {
  // Lane 0 keeps the base modulator seed and reads element 0, so its sample
  // stream must be bit-identical to a hand-built single converter (modulator
  // + decimation chain, no mux) fed element 0's capacitance.
  const core::ChipConfig chip = core::ChipConfig::paper_chip();
  core::ArrayAcquisition array{chip};
  const auto field = [](double, double, double) { return 8000.0; };
  const std::size_t frames = 16;
  const auto array_out = array.acquire_block(field, frames);
  ASSERT_EQ(array_out.size(), array.size());
  ASSERT_EQ(array_out[0].size(), frames);

  const core::SensorArray ref_array{chip};
  DeltaSigmaModulator mod{chip.modulator};
  dsp::DecimationChain chain{chip.decimation};
  const std::size_t n = chip.decimation.total_decimation;
  const double c_sense = ref_array.element(0).capacitance(8000.0, 300.0);
  std::vector<int> bits(n);
  for (std::size_t i = 0; i < frames; ++i) {
    mod.step_capacitive_block(c_sense, ref_array.reference_capacitance(),
                              bits.data(), n);
    const auto sample = chain.push_frame({bits.data(), n});
    EXPECT_EQ(sample.code, array_out[0][i].code) << i;
    EXPECT_EQ(sample.value, array_out[0][i].value) << i;
  }
}

TEST(ArrayAcquisition, ProducesOneImagePerOutputPeriod) {
  const core::ChipConfig chip = core::ChipConfig::paper_chip();
  core::ArrayAcquisition array{chip};
  // A pressure gradient across the die: elements must disagree in a
  // position-dependent way.
  const auto field = [](double x_m, double, double) {
    return 8000.0 + 4.0e7 * x_m;
  };
  const auto out = array.acquire_block(field, 32);
  ASSERT_EQ(out.size(), 4u);
  for (const auto& lane : out) ASSERT_EQ(lane.size(), 32u);
  // Discard the decimation-filter settling transient, then compare means.
  auto tail_mean = [](const std::vector<dsp::DecimatedSample>& s) {
    double sum = 0.0;
    for (std::size_t i = 16; i < s.size(); ++i) sum += s[i].value;
    return sum / (s.size() - 16);
  };
  // Row-major 2×2: elements 0/2 sit at −x, 1/3 at +x → larger pressure at
  // +x bends the membrane further, so capacitance and code go up.
  EXPECT_GT(tail_mean(out[1]), tail_mean(out[0]));
  EXPECT_GT(tail_mean(out[3]), tail_mean(out[2]));
}

TEST(ArrayAcquisition, FaultedElementMasksItsLaneAndHealthyLanesAreUntouched) {
  const core::ChipConfig chip = core::ChipConfig::paper_chip();
  core::ArrayAcquisition faulty{chip};
  core::ArrayAcquisition healthy{chip};
  const auto field = [](double, double, double) { return 8000.0; };
  const std::size_t lanes = faulty.size();
  std::vector<dsp::DecimatedSample> f_frame(lanes);
  std::vector<dsp::DecimatedSample> h_frame(lanes);

  for (std::size_t i = 0; i < 3; ++i) {
    faulty.acquire_frame(field, f_frame.data());
    healthy.acquire_frame(field, h_frame.data());
    for (std::size_t k = 0; k < lanes; ++k) {
      ASSERT_EQ(f_frame[k].code, h_frame[k].code) << "pre-fault k=" << k;
    }
  }

  // Element (0,1) = lane 1 dies mid-run: its lane must freeze and emit
  // default samples, while every other lane's stream continues unperturbed
  // (lanes never share draws — a fault cannot ripple).
  faulty.inject_element_fault(0, 1, core::ElementFault::kStuckDown);
  for (std::size_t i = 0; i < 3; ++i) {
    faulty.acquire_frame(field, f_frame.data());
    healthy.acquire_frame(field, h_frame.data());
    EXPECT_FALSE(faulty.bank().lane_enabled(1));
    EXPECT_EQ(f_frame[1].code, 0);
    EXPECT_EQ(f_frame[1].value, 0.0);
    for (std::size_t k = 0; k < lanes; ++k) {
      if (k == 1) continue;
      ASSERT_EQ(f_frame[k].code, h_frame[k].code) << "during-fault k=" << k;
    }
  }

  // Fault cleared: the lane resumes from its frozen modulator state. Its
  // decimation chain and the healthy twin's lane 1 have diverged (the twin
  // kept converting), so only the surviving lanes stay comparable — and the
  // revived lane must produce samples again.
  faulty.inject_element_fault(0, 1, core::ElementFault::kNone);
  faulty.acquire_frame(field, f_frame.data());
  healthy.acquire_frame(field, h_frame.data());
  EXPECT_TRUE(faulty.bank().lane_enabled(1));
  for (std::size_t k = 0; k < lanes; ++k) {
    if (k == 1) continue;
    ASSERT_EQ(f_frame[k].code, h_frame[k].code) << "post-clear k=" << k;
  }
}

}  // namespace
}  // namespace tono::analog
