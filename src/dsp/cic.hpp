// cic.hpp — bit-exact cascaded integrator-comb (SINC^N) decimator.
//
// First stage of the paper's decimation filter: a 3rd-order SINC running at
// the 128 kHz modulator rate. Implemented with Hogenauer's architecture —
// N integrators at the input rate, rate change R, N combs at the output
// rate — using modular int64 arithmetic, which is exact as long as the
// register width >= input_bits + N*log2(R*M) (checked in the constructor).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace tono {
class CheckpointReader;
class CheckpointWriter;
}  // namespace tono

namespace tono::dsp {

class CicDecimator {
 public:
  /// - `order`: number of integrator/comb pairs (paper: 3)
  /// - `decimation`: rate change R (>= 1)
  /// - `input_bits`: width of the input samples (1-bit ΔΣ stream → 2, since
  ///   we encode ±1); used only for the width check
  /// - `differential_delay`: comb delay M (usually 1)
  CicDecimator(int order, std::size_t decimation, int input_bits = 2,
               int differential_delay = 1);

  /// Feeds one input sample; returns the comb-section output every
  /// `decimation` samples. Output is the raw (gain-unnormalized) integer.
  [[nodiscard]] std::optional<std::int64_t> push(std::int64_t x);

  /// Block form of push(): feeds `n` samples from `xs`, writing every comb
  /// output to `out` (caller provides room for (phase + n) / decimation
  /// values). Bit-identical to n push() calls — the integrators use the same
  /// modular uint64 arithmetic — but runs them as a tight loop between
  /// output instants, with the paper's 3rd-order cascade fully unrolled.
  /// Accepts any integer sample type (the ΔΣ bitstream arrives as int).
  /// Returns the number of outputs produced.
  template <typename T>
  std::size_t push_block(const T* xs, std::size_t n, std::int64_t* out) noexcept {
    std::size_t produced = 0;
    std::size_t i = 0;
    while (i < n) {
      const std::size_t run = std::min(n - i, decimation_ - phase_);
      if (order_ == 3) {
        std::uint64_t a0 = static_cast<std::uint64_t>(integrators_[0]);
        std::uint64_t a1 = static_cast<std::uint64_t>(integrators_[1]);
        std::uint64_t a2 = static_cast<std::uint64_t>(integrators_[2]);
        for (std::size_t j = 0; j < run; ++j) {
          a0 += static_cast<std::uint64_t>(static_cast<std::int64_t>(xs[i + j]));
          a1 += a0;
          a2 += a1;
        }
        integrators_[0] = static_cast<std::int64_t>(a0);
        integrators_[1] = static_cast<std::int64_t>(a1);
        integrators_[2] = static_cast<std::int64_t>(a2);
      } else {
        for (std::size_t j = 0; j < run; ++j) {
          std::uint64_t v = static_cast<std::uint64_t>(static_cast<std::int64_t>(xs[i + j]));
          for (auto& acc : integrators_) {
            v += static_cast<std::uint64_t>(acc);
            acc = static_cast<std::int64_t>(v);
          }
        }
      }
      i += run;
      phase_ += run;
      if (phase_ == decimation_) {
        phase_ = 0;
        out[produced++] = comb_(integrators_.back());
      }
    }
    return produced;
  }

  [[nodiscard]] std::vector<std::int64_t> process(std::span<const std::int64_t> xs);

  void reset();

  /// DC gain = (R*M)^N; divide outputs by this to recover unit gain.
  [[nodiscard]] std::int64_t gain() const noexcept;

  /// Register bits actually required: input_bits + N*ceil(log2(R*M)).
  [[nodiscard]] int required_register_bits() const noexcept;

  /// Analytic magnitude response at input-rate frequency f [Hz] for input
  /// sample rate fs [Hz], normalized to unity at DC:
  /// |sin(pi f R M / fs) / (R M sin(pi f / fs))|^N.
  [[nodiscard]] double magnitude_at(double freq_hz, double input_rate_hz) const noexcept;

  [[nodiscard]] int order() const noexcept { return order_; }
  [[nodiscard]] std::size_t decimation() const noexcept { return decimation_; }

  /// Checkpointing: integrator accumulators, comb delay lines/positions and
  /// the decimation phase. Geometry (order, R, M) is config and is verified.
  void serialize(CheckpointWriter& out) const;
  void restore(CheckpointReader& in);

 private:
  /// Comb cascade at the output rate; shared by push() and push_block().
  std::int64_t comb_(std::int64_t v) noexcept;

  int order_;
  std::size_t decimation_;
  int differential_delay_;
  int input_bits_checked_{2};
  std::vector<std::int64_t> integrators_;
  std::vector<std::vector<std::int64_t>> comb_delays_;  // M-deep per comb
  std::vector<std::size_t> comb_pos_;
  std::size_t phase_{0};
};

}  // namespace tono::dsp
