file(REMOVE_RECURSE
  "CMakeFiles/test_pwa.dir/test_pwa.cpp.o"
  "CMakeFiles/test_pwa.dir/test_pwa.cpp.o.d"
  "test_pwa"
  "test_pwa.pdb"
  "test_pwa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pwa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
