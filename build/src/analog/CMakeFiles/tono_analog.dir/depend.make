# Empty dependencies file for tono_analog.
# This may be replaced when dependencies are built.
