// Microbenchmarks (google-benchmark): simulation throughput of the hot
// paths. Not a paper experiment — this guards the property that makes the
// repo usable: simulating seconds of 128 kHz operation in real time or
// faster on a laptop.
#include <benchmark/benchmark.h>

#include <cmath>
#include <numbers>

#include "src/analog/modulator.hpp"
#include "src/core/pipeline.hpp"
#include "src/dsp/decimation.hpp"
#include "src/dsp/fft.hpp"
#include "src/mems/transducer.hpp"

namespace {

using namespace tono;

void BM_ModulatorStepVoltage(benchmark::State& state) {
  analog::DeltaSigmaModulator mod{analog::ModulatorConfig{}};
  double v = 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mod.step_voltage(v));
    v = -v;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ModulatorStepVoltage);

void BM_ModulatorStepCapacitive(benchmark::State& state) {
  analog::DeltaSigmaModulator mod{analog::ModulatorConfig{}};
  double c = 100e-15;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mod.step_capacitive(c, 100e-15));
    c = c == 100e-15 ? 101e-15 : 100e-15;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ModulatorStepCapacitive);

void BM_DecimationPush(benchmark::State& state) {
  dsp::DecimationChain chain{dsp::DecimationConfig{}};
  int bit = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain.push(bit));
    bit = -bit;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DecimationPush);

void BM_CapacitanceExactIntegral(benchmark::State& state) {
  mems::PressureTransducer t{mems::TransducerConfig{}};
  double p = 1000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.capacitance(p));
    p = p < 20e3 ? p + 13.0 : 1000.0;
  }
}
BENCHMARK(BM_CapacitanceExactIntegral);

void BM_CapacitanceLut(benchmark::State& state) {
  core::SensorArray arr{core::ChipConfig::paper_chip()};
  double p = 1000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(arr.element(0).capacitance(p));
    p = p < 20e3 ? p + 13.0 : 1000.0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CapacitanceLut);

void BM_FullPipelineClock(benchmark::State& state) {
  core::AcquisitionPipeline pipe{core::ChipConfig::paper_chip()};
  double t = 0.0;
  for (auto _ : state) {
    const double p = 10000.0 + 2000.0 * std::sin(2.0 * std::numbers::pi * 1.2 * t);
    benchmark::DoNotOptimize(pipe.clock(p));
    t += 1.0 / 128000.0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["realtime_x"] = benchmark::Counter(
      static_cast<double>(state.iterations()) / 128000.0, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullPipelineClock);

void BM_Fft8k(benchmark::State& state) {
  std::vector<dsp::Complex> x(8192);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = dsp::Complex{std::sin(0.01 * static_cast<double>(i)), 0.0};
  }
  for (auto _ : state) {
    auto copy = x;
    dsp::fft_inplace(copy);
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_Fft8k);

}  // namespace

BENCHMARK_MAIN();
