// Tests for the fleet serving layer (src/fleet/): the determinism contract
// (parallel fleet == serial fleet == solo sessions, bit for bit), metrics
// on/off bit-exactness, session lifecycle including quarantine crash
// isolation, and the ward aggregator's escalation policy. The Fleet and
// Ward suites run under the CI TSan job.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "src/bio/pulse_generator.hpp"
#include "src/common/metrics.hpp"
#include "src/fleet/fleet_scheduler.hpp"

namespace {

using namespace tono;
using fleet::FleetConfig;
using fleet::FleetEvent;
using fleet::FleetEventKind;
using fleet::FleetScheduler;
using fleet::PatientSession;
using fleet::SessionConfig;
using fleet::SessionState;
using fleet::WardAggregator;
using fleet::WardAlarmLevel;
using fleet::WardConfig;

/// The mixed 3-session ward every determinism test runs: a quiet patient,
/// an alarm-worthy preset, a scenario-driven one.
SessionConfig mixed_config(std::size_t index) {
  SessionConfig config;
  if (index == 1) config.wrist.pulse = bio::PatientPresets::hypertensive();
  if (index == 2) config.scenario = "exercise";
  return config;
}

/// Runs a 3-session fleet for `duration_s` and returns the recorded code
/// stream of every session.
std::vector<std::vector<std::int16_t>> run_fleet(std::size_t threads,
                                                 double duration_s) {
  WardConfig ward_config;
  ward_config.record_codes = true;
  WardAggregator ward{ward_config};
  FleetConfig fleet_config;
  fleet_config.threads = threads;
  FleetScheduler scheduler{fleet_config, ward};
  for (std::size_t i = 0; i < 3; ++i) {
    (void)scheduler.admit(mixed_config(i));
  }
  scheduler.run(duration_s);
  std::vector<std::vector<std::int16_t>> codes;
  for (std::uint32_t id = 0; id < 3; ++id) {
    codes.push_back(ward.recorded_codes(id));
  }
  return codes;
}

TEST(Fleet, SessionSeedDependsOnlyOnBaseSeedStreamAndIndex) {
  WardAggregator ward_a, ward_b, ward_c;
  FleetConfig config;
  FleetScheduler a{config, ward_a};
  FleetScheduler b{config, ward_b};
  EXPECT_EQ(a.session_seed(0), b.session_seed(0));
  EXPECT_EQ(a.session_seed(7), b.session_seed(7));
  EXPECT_NE(a.session_seed(0), a.session_seed(1));
  config.stream_name = "other";
  FleetScheduler c{config, ward_c};
  EXPECT_NE(a.session_seed(0), c.session_seed(0));
}

TEST(Fleet, ParallelIsBitIdenticalToSerial) {
  const auto serial = run_fleet(1, 1.0);
  const auto parallel = run_fleet(4, 1.0);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_FALSE(serial[i].empty()) << "session " << i << " produced no codes";
    EXPECT_EQ(serial[i], parallel[i]) << "session " << i << " diverged";
  }
}

TEST(Fleet, FleetSessionIsBitIdenticalToSoloRun) {
  const auto fleet_codes = run_fleet(1, 1.0);

  // Reproduce each session solo: same derived seed, same config, same step
  // schedule — the fleet must be invisible to the session.
  WardAggregator ward;
  FleetScheduler seeder{FleetConfig{}, ward};
  for (std::uint32_t id = 0; id < 3; ++id) {
    SessionConfig config = mixed_config(id);
    config.seed = seeder.session_seed(id);
    PatientSession solo{id, std::move(config)};
    std::vector<std::int16_t> codes;
    while (solo.stream_time_s() < 1.0) {
      solo.step(FleetConfig{}.frames_per_step);
      solo.codes().pop_all(codes);
    }
    EXPECT_EQ(codes, fleet_codes[id]) << "session " << id << " diverged solo";
  }
}

TEST(Fleet, MetricsOnOffIsBitExact) {
  const auto with_metrics = run_fleet(1, 0.5);
  metrics::set_enabled(false);
  const auto without_metrics = run_fleet(1, 0.5);
  metrics::set_enabled(true);
  EXPECT_EQ(with_metrics, without_metrics);
}

TEST(Fleet, AdmitRejectsCodeRingSmallerThanOneBatch) {
  WardAggregator ward;
  FleetConfig config;
  config.threads = 1;
  config.frames_per_step = 64;
  FleetScheduler scheduler{config, ward};
  SessionConfig session;
  session.code_ring_capacity = 16;  // < frames_per_step: serial deadlock risk
  EXPECT_THROW((void)scheduler.admit(std::move(session)), std::invalid_argument);
}

TEST(Fleet, UnknownScenarioIsRejectedAtAdmission) {
  WardAggregator ward;
  FleetScheduler scheduler{FleetConfig{}, ward};
  SessionConfig session;
  session.scenario = "zombie-apocalypse";
  EXPECT_THROW((void)scheduler.admit(std::move(session)), std::invalid_argument);
}

TEST(Fleet, ThrowingSessionIsQuarantinedNotFatal) {
  WardAggregator ward;
  FleetConfig config;
  config.threads = 1;
  FleetScheduler scheduler{config, ward};
  // A calibration window far too short to contain a usable pulse: admission
  // (which runs inside the first batch) throws and must quarantine only
  // this session.
  SessionConfig bad;
  bad.calibration_window_s = 0.25;
  const auto bad_id = scheduler.admit(std::move(bad));
  const auto good_id = scheduler.admit(SessionConfig{});

  scheduler.run(0.2);

  EXPECT_EQ(scheduler.state(bad_id), SessionState::kQuarantined);
  EXPECT_FALSE(scheduler.quarantine_reason(bad_id).empty());
  EXPECT_EQ(scheduler.state(good_id), SessionState::kRunning);
  EXPECT_GT(ward.session(good_id)->codes, 0u);
  // The ward snapshot carries the reason as the session note.
  EXPECT_EQ(ward.session(bad_id)->lifecycle, SessionState::kQuarantined);
  EXPECT_FALSE(ward.session(bad_id)->note.empty());
}

TEST(Fleet, LifecyclePauseResumeDischarge) {
  WardAggregator ward;
  FleetConfig config;
  config.threads = 1;
  FleetScheduler scheduler{config, ward};
  const auto id = scheduler.admit(SessionConfig{});
  EXPECT_EQ(scheduler.state(id), SessionState::kAdmitted);
  EXPECT_EQ(scheduler.active_sessions(), 1u);

  scheduler.pause(id);
  EXPECT_EQ(scheduler.state(id), SessionState::kPaused);
  EXPECT_EQ(scheduler.active_sessions(), 0u);
  EXPECT_EQ(scheduler.step_all(), 0u) << "paused sessions are skipped";

  scheduler.resume(id);
  EXPECT_EQ(scheduler.step_all(), 1u);
  EXPECT_EQ(scheduler.state(id), SessionState::kRunning);

  scheduler.discharge(id);
  EXPECT_EQ(scheduler.state(id), SessionState::kDischarged);
  EXPECT_EQ(scheduler.step_all(), 0u) << "discharged sessions never step";
  // Everything produced before discharge reached the ward.
  EXPECT_EQ(ward.session(id)->codes, scheduler.config().frames_per_step);
}

// --- Ward aggregator unit tests: fabricated events through real rings -----

/// A session used purely as a ring carrier (never admitted or stepped);
/// the test plays producer.
class WardHarness : public ::testing::Test {
 protected:
  WardHarness() : session_{0, SessionConfig{}} {}

  void attach(WardConfig config) {
    ward_ = std::make_unique<WardAggregator>(config);
    ward_->attach(session_, "harness");
  }

  /// Advances the ward's inferred stream clock: time = codes / output rate.
  void push_codes(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      (void)session_.codes().push(0, BackpressurePolicy::kBlock);
    }
  }

  void push_alarm(core::AlarmKind kind, bool active, double t_s) {
    (void)session_.events().push(
        FleetEvent{.kind = FleetEventKind::kAlarm,
                   .session_id = 0,
                   .alarm_kind = kind,
                   .flag = active,
                   .time_s = t_s},
        BackpressurePolicy::kBlock);
  }

  PatientSession session_;
  std::unique_ptr<WardAggregator> ward_;
};

TEST_F(WardHarness, AlarmRaiseClearTracksActiveCount) {
  attach(WardConfig{});
  push_alarm(core::AlarmKind::kSystolicHigh, true, 0.0);
  (void)ward_->drain_once();
  EXPECT_EQ(ward_->alarms_active(), 1u);
  EXPECT_EQ(ward_->alarm_queue().front().level, WardAlarmLevel::kNotice);
  EXPECT_EQ(ward_->session(0)->alarms_active, 1u);

  push_alarm(core::AlarmKind::kSystolicHigh, false, 1.0);
  (void)ward_->drain_once();
  EXPECT_EQ(ward_->alarms_active(), 0u);
  EXPECT_EQ(ward_->session(0)->alarms_active, 0u);
  EXPECT_EQ(ward_->escalations(), 0u);
}

TEST_F(WardHarness, UnresolvedAlarmEscalatesToUrgent) {
  WardConfig config;
  config.escalate_after_s = 0.05;
  attach(config);
  push_alarm(core::AlarmKind::kRateHigh, true, 0.0);
  (void)ward_->drain_once();
  EXPECT_EQ(ward_->alarm_queue().front().level, WardAlarmLevel::kNotice);

  // Nobody resolves it while the session streams on: notice → urgent once
  // the inferred stream time passes escalate_after_s.
  push_codes(static_cast<std::size_t>(0.1 * session_.output_rate_hz()));
  (void)ward_->drain_once();
  EXPECT_EQ(ward_->alarm_queue().front().level, WardAlarmLevel::kUrgent);
  EXPECT_EQ(ward_->escalations(), 1u);

  // Urgent is terminal for time-based escalation: no double counting.
  push_codes(static_cast<std::size_t>(0.1 * session_.output_rate_hz()));
  (void)ward_->drain_once();
  EXPECT_EQ(ward_->escalations(), 1u);
}

TEST_F(WardHarness, MultiVitalDeteriorationGoesStraightToCritical) {
  attach(WardConfig{});  // critical_active_kinds == 2
  push_alarm(core::AlarmKind::kSystolicLow, true, 0.0);
  push_alarm(core::AlarmKind::kRateHigh, true, 0.1);
  (void)ward_->drain_once();
  ASSERT_EQ(ward_->alarm_queue().size(), 2u);
  EXPECT_EQ(ward_->alarm_queue()[0].level, WardAlarmLevel::kNotice);
  EXPECT_EQ(ward_->alarm_queue()[1].level, WardAlarmLevel::kCritical)
      << "second distinct active kind on one patient is critical";
  EXPECT_EQ(ward_->escalations(), 1u);
}

TEST_F(WardHarness, DropAccountingMirrorsTheRings) {
  attach(WardConfig{});
  // Overflow the codes ring (drop-oldest): capacity survives, the rest drop.
  const std::size_t capacity = session_.codes().capacity();
  push_codes(capacity);
  for (std::size_t i = 0; i < 100; ++i) {
    (void)session_.codes().push(1, BackpressurePolicy::kDropOldest);
  }
  (void)ward_->drain_once();
  EXPECT_EQ(ward_->session(0)->code_drops, 100u);
  EXPECT_EQ(ward_->session(0)->codes, capacity);
  EXPECT_EQ(ward_->total_drops(), 100u);
  EXPECT_EQ(ward_->event_drops(), 0u) << "event ring never dropped";
}

}  // namespace
