// fft.hpp — radix-2 complex FFT and real-signal helpers.
//
// Self-contained (no external FFT dependency) because the repo must build
// offline. An iterative in-place Cooley-Tukey radix-2 is plenty for the
// 2^13..2^20-point spectra used in the ADC characterization benches.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace tono::dsp {

using Complex = std::complex<double>;

/// In-place forward FFT; x.size() must be a power of two
/// (throws std::invalid_argument otherwise).
void fft_inplace(std::span<Complex> x);

/// In-place inverse FFT (includes the 1/N normalization).
void ifft_inplace(std::span<Complex> x);

/// Forward FFT of a real signal, zero-padded to the next power of two if
/// needed. Returns the full complex spectrum (size = padded length).
[[nodiscard]] std::vector<Complex> fft_real(std::span<const double> x);

/// One-sided magnitude spectrum of a real signal: bins 0..N/2 inclusive,
/// scaled so that a full-scale coherent sine of amplitude A yields A at its
/// bin (i.e. 2/N scaling except at DC and Nyquist). Input length must be a
/// power of two.
[[nodiscard]] std::vector<double> magnitude_spectrum(std::span<const double> x);

/// One-sided power spectrum (magnitude squared with the same scaling
/// convention; power of a sine of amplitude A is (A^2)/2 spread over its bin).
[[nodiscard]] std::vector<double> power_spectrum(std::span<const double> x);

}  // namespace tono::dsp
