// beat_detection.hpp — beat segmentation and per-beat feature extraction on
// the 1 kS/s pressure stream.
//
// Upstroke detection on the band-limited derivative with an adaptive
// threshold and a physiological refractory period; each detected upstroke is
// expanded into a beat record (foot = diastolic minimum before the upstroke,
// peak = systolic maximum after it). Works on raw ADC values or calibrated
// mmHg alike, since the mapping is affine.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tono::core {

struct BeatDetectorConfig {
  double sample_rate_hz{1000.0};
  /// Band limits for the detection filter.
  double highpass_hz{0.5};
  double lowpass_hz{16.0};
  /// Threshold as a fraction of the running derivative-peak estimate.
  double threshold_fraction{0.40};
  /// Decay time of the running peak estimate [s].
  double peak_decay_s{2.0};
  /// Minimum time between beats [s] (refractory; 0.3 s ≈ 200 bpm).
  double refractory_s{0.3};
  /// Search windows around the upstroke for foot and peak [s].
  double foot_window_s{0.35};
  double peak_window_s{0.45};
  /// Beats with pulse amplitude below this fraction of the median beat
  /// amplitude are rejected (dicrotic-wave false triggers).
  double min_amplitude_fraction{0.4};
};

/// One detected beat.
struct Beat {
  double upstroke_s{0.0};   ///< time of maximum slope
  double foot_s{0.0};       ///< diastolic foot time
  double peak_s{0.0};       ///< systolic peak time
  double systolic_value{0.0};
  double diastolic_value{0.0};
  double mean_value{0.0};   ///< mean over foot..next-foot (or available span)
};

struct BeatAnalysis {
  std::vector<Beat> beats;
  double mean_systolic{0.0};
  double mean_diastolic{0.0};
  double mean_map{0.0};
  double heart_rate_bpm{0.0};
  /// Standard deviation of beat intervals (HRV proxy) [s].
  double interval_stddev_s{0.0};
};

class BeatDetector {
 public:
  explicit BeatDetector(const BeatDetectorConfig& config = {});

  /// Detects beats over a full record; `t0_s` is the time of samples[0].
  [[nodiscard]] BeatAnalysis analyze(std::span<const double> samples,
                                     double t0_s = 0.0) const;

  [[nodiscard]] const BeatDetectorConfig& config() const noexcept { return config_; }

 private:
  BeatDetectorConfig config_;
};

}  // namespace tono::core
