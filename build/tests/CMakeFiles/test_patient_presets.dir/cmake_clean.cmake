file(REMOVE_RECURSE
  "CMakeFiles/test_patient_presets.dir/test_patient_presets.cpp.o"
  "CMakeFiles/test_patient_presets.dir/test_patient_presets.cpp.o.d"
  "test_patient_presets"
  "test_patient_presets.pdb"
  "test_patient_presets[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_patient_presets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
