// telemetry.hpp — the FPGA→computer data link of Fig. 3.
//
// "The output of the modulator is connected to an external digital
// decimation filter. Currently this filter is implemented in an FPGA, which
// also provides an interface (USB) to a computer system."
//
// Frame format (little-endian within fields):
//   2 B  sync  0xA5 0x5A
//   1 B  flags/version
//   2 B  sequence number (wraps)
//   1 B  payload sample count n (≤ 80)
//   ceil(n·12/8) B  packed 12-bit two's-complement samples
//   2 B  CRC-16/CCITT-FALSE over everything after the sync word
//
// The decoder is a resynchronizing byte-stream parser: it survives garbage
// between frames, detects CRC corruption, and reports sequence gaps (lost
// frames) — what a host-side driver for the demonstrator needs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/common/metrics.hpp"
#include "src/common/rng.hpp"

namespace tono::core {

inline constexpr std::uint8_t kFrameSync0 = 0xA5;
inline constexpr std::uint8_t kFrameSync1 = 0x5A;
inline constexpr std::size_t kMaxSamplesPerFrame = 80;
inline constexpr std::uint8_t kProtocolVersion = 1;

/// Exact wire sizing of one frame. The gateway envelope layer
/// (src/gateway/) wraps whole frames in per-session channel envelopes and
/// needs these to size, validate and account envelopes byte-exactly.
inline constexpr std::size_t kFrameHeaderBytes = 6;  // sync(2)+version(1)+seq(2)+count(1)
inline constexpr std::size_t kFrameCrcBytes = 2;
[[nodiscard]] constexpr std::size_t frame_payload_bytes(std::size_t n_samples) noexcept {
  return (n_samples * 12 + 7) / 8;
}
[[nodiscard]] constexpr std::size_t frame_wire_bytes(std::size_t n_samples) noexcept {
  return kFrameHeaderBytes + frame_payload_bytes(n_samples) + kFrameCrcBytes;
}

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF, no reflection).
[[nodiscard]] std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data) noexcept;

/// Packs signed 12-bit codes (range checked) into the wire format.
class FrameEncoder {
 public:
  /// Encodes one frame from up to kMaxSamplesPerFrame 12-bit codes.
  /// Throws std::invalid_argument on range violations or empty/oversize input.
  [[nodiscard]] std::vector<std::uint8_t> encode(std::span<const std::int16_t> samples);

  [[nodiscard]] std::uint16_t next_sequence() const noexcept { return sequence_; }

  /// Checkpointing: the wire sequence counter.
  void serialize(CheckpointWriter& out) const;
  void restore(CheckpointReader& in);

 private:
  std::uint16_t sequence_{0};
};

/// One decoded frame.
struct DecodedFrame {
  std::uint16_t sequence{0};
  std::vector<std::int16_t> samples;
};

struct LinkStats {
  std::size_t frames_ok{0};
  std::size_t crc_errors{0};
  std::size_t resyncs{0};        ///< bytes skipped hunting for sync
  std::size_t lost_frames{0};    ///< inferred from sequence gaps
};

/// Streaming decoder; feed arbitrary byte chunks, collect frames. The
/// per-decoder LinkStats are mirrored into the process-wide metrics registry
/// (telemetry.* counters aggregate across decoder instances); reset() clears
/// only the per-decoder view.
class FrameDecoder {
 public:
  FrameDecoder();

  /// Consumes a chunk; returns frames completed within it.
  [[nodiscard]] std::vector<DecodedFrame> push(std::span<const std::uint8_t> bytes);

  [[nodiscard]] const LinkStats& stats() const noexcept { return stats_; }
  void reset();

  /// Checkpointing: parse buffer, per-decoder stats and sequence tracking.
  /// The registry mirrors are process-lifetime counters and are untouched —
  /// restore() repositions this decoder without re-counting its history.
  void serialize(CheckpointWriter& out) const;
  void restore(CheckpointReader& in);

 private:
  /// Tries to parse one frame at buffer_[offset..]; returns consumed bytes
  /// (0 = need more data; 1 = resync step).
  [[nodiscard]] std::size_t try_parse_at(std::size_t offset,
                                         std::optional<DecodedFrame>& out);

  std::vector<std::uint8_t> buffer_;
  LinkStats stats_;
  std::optional<std::uint16_t> last_sequence_;
  // Registry mirrors of LinkStats (resolved once at construction).
  metrics::Counter* frames_ok_metric_;
  metrics::Counter* crc_errors_metric_;
  metrics::Counter* resyncs_metric_;
  metrics::Counter* lost_frames_metric_;
};

/// Per-frame corruption probabilities for LinkFaultInjector. The four modes
/// are mutually exclusive per frame (first match on one uniform draw); their
/// probabilities must sum to ≤ 1, any remainder passes the frame clean.
struct LinkFaultConfig {
  double drop_prob{0.20};      ///< frame vanishes on the wire entirely
  double bit_flip_prob{0.50};  ///< 1–3 random bit flips (usually a CRC error)
  double truncate_prob{0.15};  ///< tail cut off mid-frame
  double garbage_prob{0.15};   ///< line noise prepended before the sync word
  std::size_t max_garbage_bytes{12};
};

/// Deterministic wire-level fault model for the Fig. 3 USB link: corrupts
/// encoded frames the same way the telemetry fuzz tests do, but as a library
/// component driven by an explicitly seeded Rng — so a fleet fault plan can
/// schedule "link corruption bursts" that are bit-identical across runs and
/// thread counts. FrameDecoder's CRC/resync/sequence accounting turns every
/// corruption into a counted loss, never a wrong sample.
class LinkFaultInjector {
 public:
  LinkFaultInjector(const LinkFaultConfig& config, std::uint64_t seed);

  /// Mutates one encoded frame in place (possibly clearing it = dropped).
  /// Returns true if the frame was touched.
  bool corrupt(std::vector<std::uint8_t>& wire);

  [[nodiscard]] std::uint64_t frames_corrupted() const noexcept {
    return frames_corrupted_;
  }

  /// Checkpointing: the fault Rng stream position and corruption count.
  void serialize(CheckpointWriter& out) const;
  void restore(CheckpointReader& in);

 private:
  LinkFaultConfig config_;
  Rng rng_;
  std::uint64_t frames_corrupted_{0};
};

}  // namespace tono::core
