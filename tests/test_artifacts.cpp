// Tests for the measurement-artefact injector.
#include "src/bio/artifacts.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/statistics.hpp"

namespace tono::bio {
namespace {

ArtifactConfig quiet() {
  ArtifactConfig c;
  c.wander_mmhg_per_sqrt_s = 0.0;
  c.spike_rate_hz = 0.0;
  c.contact_noise_mmhg = 0.0;
  return c;
}

TEST(ArtifactInjector, AllDisabledGivesZero) {
  ArtifactInjector inj{quiet()};
  for (int i = 0; i < 1000; ++i) EXPECT_DOUBLE_EQ(inj.next(0.001), 0.0);
}

TEST(ArtifactInjector, ContactNoiseHasConfiguredRms) {
  ArtifactConfig c = quiet();
  c.contact_noise_mmhg = 0.5;
  ArtifactInjector inj{c};
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(inj.next(0.001));
  EXPECT_NEAR(stddev(xs), 0.5, 0.02);
  EXPECT_NEAR(mean(xs), 0.0, 0.02);
}

TEST(ArtifactInjector, WanderGrowsWithTime) {
  ArtifactConfig c = quiet();
  c.wander_mmhg_per_sqrt_s = 1.0;
  // Random-walk displacement variance after T seconds ≈ T (per-√s scale 1);
  // average over seeds.
  double short_disp = 0.0;
  double long_disp = 0.0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    c.seed = static_cast<std::uint64_t>(1000 + t);
    ArtifactInjector inj{c};
    double v = 0.0;
    for (int i = 0; i < 1000; ++i) v = inj.next(0.001);  // 1 s
    short_disp += v * v;
    for (int i = 0; i < 9000; ++i) v = inj.next(0.001);  // 10 s total
    long_disp += v * v;
  }
  EXPECT_GT(long_disp / trials, 3.0 * (short_disp / trials));
}

TEST(ArtifactInjector, SpikesOccurAtConfiguredRate) {
  ArtifactConfig c = quiet();
  c.spike_rate_hz = 1.0;
  ArtifactInjector inj{c};
  for (int i = 0; i < 100000; ++i) (void)inj.next(0.001);  // 100 s
  EXPECT_NEAR(static_cast<double>(inj.spike_count()), 100.0, 40.0);
}

TEST(ArtifactInjector, SpikesDecay) {
  ArtifactConfig c = quiet();
  c.spike_rate_hz = 1000.0;  // force an immediate spike
  c.spike_decay_s = 0.05;
  c.spike_amplitude_mmhg = 20.0;
  ArtifactInjector inj{c};
  // Trigger spikes for a few samples, then stop and watch the decay.
  double peak = 0.0;
  for (int i = 0; i < 50; ++i) peak = std::max(peak, std::abs(inj.next(0.001)));
  EXPECT_GT(peak, 0.0);
  // Disable further spikes is not possible mid-run; instead verify the decay
  // constant: level after 5 τ of quiet Poisson gaps is rarely above peak.
  ArtifactConfig c2 = quiet();
  c2.spike_rate_hz = 1e-6;  // essentially never again
  ArtifactInjector inj2{c2};
  EXPECT_DOUBLE_EQ(inj2.next(0.001), 0.0);
}

TEST(ArtifactInjector, ApplyAddsToSamples) {
  ArtifactConfig c = quiet();
  c.contact_noise_mmhg = 0.1;
  ArtifactInjector inj{c};
  std::vector<double> samples(1000, 5.0);
  inj.apply(samples, 1000.0);
  double dev = 0.0;
  for (double s : samples) dev += std::abs(s - 5.0);
  EXPECT_GT(dev, 0.0);
  EXPECT_NEAR(mean(samples), 5.0, 0.05);
}

TEST(ArtifactInjector, DeterministicWithSeed) {
  ArtifactConfig c;
  c.seed = 55;
  ArtifactInjector a{c};
  ArtifactInjector b{c};
  for (int i = 0; i < 1000; ++i) EXPECT_DOUBLE_EQ(a.next(0.001), b.next(0.001));
}

TEST(ArtifactInjector, RejectsBadInputs) {
  ArtifactConfig bad;
  bad.spike_decay_s = 0.0;
  EXPECT_THROW((ArtifactInjector{bad}), std::invalid_argument);
  ArtifactInjector ok{ArtifactConfig{}};
  EXPECT_THROW((void)ok.next(0.0), std::invalid_argument);
  std::vector<double> xs(10, 0.0);
  EXPECT_THROW(ok.apply(xs, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace tono::bio
