// E5a / Fig. 2 — membrane transducer transfer characteristics.
//
// Paper (§2.1): square membranes, 100 µm side, 3 µm thick, CMOS
// oxide/nitride/Al stack over a polysilicon bottom electrode; pressure
// deflects the membrane and changes the gap capacitance. The paper gives the
// geometry but no transfer curve — this bench generates the curve the device
// physics implies, which everything downstream (modulator range, §4 feedback
// capacitor sizing) depends on.
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/common/units.hpp"
#include "src/mems/transducer.hpp"

namespace {

using namespace tono;

void run() {
  bench::print_header("E5a / Fig. 2", "Membrane deflection and capacitance vs pressure");

  const mems::TransducerConfig cfg;  // paper geometry
  const mems::PressureTransducer t{cfg};
  const auto& plate = t.capacitor().plate();

  TextTable mt{"Membrane mechanical summary (100 um x 3 um CMOS stack)"};
  mt.set_header({"quantity", "value", "unit"});
  mt.add_row("flexural rigidity D", plate.flexural_rigidity() * 1e9, "nN*m", 3);
  mt.add_row("residual tension N0", plate.residual_tension(), "N/m", 2);
  mt.add_row("linear stiffness k1", plate.linear_stiffness() / 1e12, "TPa/m", 3);
  mt.add_row("fundamental resonance", plate.fundamental_resonance_hz() / 1e6, "MHz", 2);
  mt.add_row("rest capacitance", units::f_to_ff(t.bias_capacitance()), "fF", 2);
  mt.add_row("sensitivity dC/dp", t.sensitivity() * 1e18 * 1e3, "zF/kPa*1e3", 3);
  mt.add_row("pull-in voltage", t.capacitor().pull_in_voltage(), "V", 0);
  mt.add_row("Brownian NEP", units::pa_to_mmhg(t.noise_equivalent_pressure_density()) * 1e6,
             "ummHg/rtHz", 2);
  mt.print(std::cout);

  SeriesWriter defl{"fig2_deflection", "pressure_kpa", "center_deflection_nm"};
  SeriesWriter cap{"fig2_capacitance", "pressure_kpa", "capacitance_ff"};
  TextTable ct{"Transfer curve"};
  ct.set_header({"p [kPa]", "p [mmHg]", "w0 [nm]", "C [fF]", "dC [fF]"});
  const double c0 = t.bias_capacitance();
  for (double p_kpa = -10.0; p_kpa <= 40.0; p_kpa += 2.5) {
    const double p = units::kpa_to_pa(p_kpa);
    const double w0 = t.deflection(p);
    const double c = t.capacitance(p);
    defl.add(p_kpa, w0 * 1e9);
    cap.add(p_kpa, units::f_to_ff(c));
    ct.add_row({format_double(p_kpa, 1), format_double(units::pa_to_mmhg(p), 0),
                format_double(w0 * 1e9, 2), format_double(units::f_to_ff(c), 3),
                format_double(units::f_to_ff(c - c0), 4)});
  }
  ct.print(std::cout);
  defl.write_ascii_plot(std::cout, 64, 12);
  cap.write_ascii_plot(std::cout, 64, 12);
  defl.write_csv(std::cout);
  cap.write_csv(std::cout);

  // Backpressure bias (§3.2: the tube bends membranes upward).
  TextTable bt{"Backpressure bias (pressure tube, Fig. 8)"};
  bt.set_header({"backpressure [kPa]", "bias deflection [nm]", "bias C [fF]"});
  for (double bp_kpa : {0.0, 5.0, 10.0, 15.0, 20.0}) {
    mems::TransducerConfig biased = cfg;
    biased.backpressure_pa = units::kpa_to_pa(bp_kpa);
    const mems::PressureTransducer tb{biased};
    bt.add_row({format_double(bp_kpa, 1), format_double(tb.deflection(0.0) * 1e9, 2),
                format_double(units::f_to_ff(tb.bias_capacitance()), 3)});
  }
  bt.print(std::cout);

  bench::ComparisonTable cmp{"Paper vs model (§2.1 geometry)"};
  cmp.add("membrane side", "100 um",
          format_double(units::m_to_um(cfg.plate.side_length_m), 0) + " um", true);
  cmp.add("membrane thickness", "3 um",
          format_double(units::m_to_um(cfg.plate.stack.total_thickness_m()), 1) + " um",
          true);
  cmp.add("element capacitance", "~100 fF class",
          format_double(units::f_to_ff(t.bias_capacitance()), 0) + " fF",
          t.bias_capacitance() > 50e-15 && t.bias_capacitance() < 200e-15);
  cmp.add("resonance >> signal band", "implied",
          format_double(plate.fundamental_resonance_hz() / 1e6, 1) + " MHz >> 500 Hz",
          plate.fundamental_resonance_hz() > 1e5);
  cmp.print();
}

}  // namespace

int main() {
  run();
  return 0;
}
