// scan.hpp — array scanning and strongest-element selection.
//
// §2: "an array of force detectors is used and the sensor element with the
// strongest signal is selected during measurement. This can also be used for
// localizing blood vessels, buried in tissue."
//
// The controller dwells on each element through the shared pipeline,
// discards the decimation-filter transient after each mux switch, measures
// the pulsation strength, and selects the element with the largest signal.
#pragma once

#include <cstddef>
#include <vector>

#include "src/core/pipeline.hpp"

namespace tono::core {

struct ScanConfig {
  /// Dwell per element, in output samples (at 1 kS/s). Must be long enough
  /// to cover ≥ 1 heart beat for a meaningful amplitude estimate.
  std::size_t dwell_samples{1500};
  /// Output samples discarded after each switch (filter transient; the
  /// §2.2 settling limited by the converter's signal bandwidth).
  std::size_t settle_samples{64};
  /// Amplitude metric percentile span (robust peak-to-peak).
  double low_percentile{5.0};
  double high_percentile{95.0};
};

/// Signal strength measured on one element.
struct ElementSignal {
  std::size_t row{0};
  std::size_t col{0};
  double amplitude{0.0};   ///< robust peak-to-peak of the normalized output
  double mean_level{0.0};  ///< DC level (placement/contact indicator)
};

struct ScanResult {
  std::vector<ElementSignal> elements;  ///< row-major
  std::size_t best_row{0};
  std::size_t best_col{0};
  double best_amplitude{0.0};
};

class ScanController {
 public:
  explicit ScanController(const ScanConfig& config = {});

  /// Scans every element of the pipeline's array under the given contact
  /// field and selects the strongest. Leaves the pipeline routed to the
  /// winning element.
  [[nodiscard]] ScanResult scan(AcquisitionPipeline& pipeline,
                                const ContactField& field) const;

  [[nodiscard]] const ScanConfig& config() const noexcept { return config_; }

 private:
  ScanConfig config_;
};

}  // namespace tono::core
