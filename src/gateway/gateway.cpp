#include "src/gateway/gateway.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

namespace tono::gateway {
namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (static_cast<std::uint16_t>(p[1]) << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

/// Builds one envelope around `frame` (see gateway.hpp for the layout).
std::vector<std::uint8_t> make_envelope(std::uint32_t channel_id,
                                        std::uint32_t sequence,
                                        std::span<const std::uint8_t> frame,
                                        std::uint16_t n_codes) {
  if (frame.size() > kMaxEnvelopePayload) {
    throw std::invalid_argument{"gateway: envelope payload too large"};
  }
  std::vector<std::uint8_t> wire;
  wire.reserve(envelope_wire_bytes(frame.size()));
  wire.push_back(kEnvelopeSync0);
  wire.push_back(kEnvelopeSync1);
  wire.push_back(kEnvelopeVersion);
  put_u32(wire, channel_id);
  put_u32(wire, sequence);
  put_u16(wire, n_codes);
  put_u16(wire, static_cast<std::uint16_t>(frame.size()));
  wire.insert(wire.end(), frame.begin(), frame.end());
  const std::uint16_t crc = core::crc16_ccitt(
      std::span<const std::uint8_t>{wire.data() + 2, wire.size() - 2});
  put_u16(wire, crc);
  return wire;
}

}  // namespace

GatewayMux::GatewayMux(Transport& transport, GatewayConfig config)
    : transport_(transport), config_(config) {
  auto& reg = metrics::Registry::global();
  frames_metric_ = &reg.counter(metrics::names::kGatewayFramesMuxed);
  bytes_metric_ = &reg.counter(metrics::names::kGatewayBytesSent);
  blocks_metric_ = &reg.counter(metrics::names::kGatewayBackpressureBlocks);
  envelopes_dropped_metric_ = &reg.counter(metrics::names::kGatewayEnvelopesDropped);
  codes_dropped_metric_ = &reg.counter(metrics::names::kGatewayCodesDropped);
}

void GatewayMux::open_channel(std::uint32_t channel_id) {
  channels_.try_emplace(channel_id);
}

void GatewayMux::ship_(Channel& channel, std::uint32_t channel_id,
                       std::span<const std::uint8_t> frame, std::uint16_t n_codes) {
  const auto wire = make_envelope(channel_id, channel.next_sequence++, frame, n_codes);
  while (!transport_.try_send(wire)) {
    if (config_.wire_policy == BackpressurePolicy::kDropOldest &&
        !transport_.lossless()) {
      const auto shed = transport_.drop_oldest();
      if (!shed.empty()) {
        // The shed chunk is a whole envelope we built earlier; its header
        // says exactly how many codes just died on the wire.
        ++envelopes_dropped_;
        envelopes_dropped_metric_->add(1);
        const std::uint64_t lost =
            shed.size() >= kEnvelopeHeaderBytes ? get_u16(shed.data() + 11) : 0;
        codes_dropped_ += lost;
        codes_dropped_metric_->add(lost);
        continue;
      }
    }
    // kBlock (or a transport with nothing left to shed): counted stall,
    // then wait for the consumer.
    ++backpressure_blocks_;
    blocks_metric_->add(1);
    std::this_thread::yield();
  }
  ++frames_muxed_;
  frames_metric_->add(1);
  codes_sent_ += n_codes;
  bytes_sent_ += wire.size();
  bytes_metric_->add(static_cast<std::uint64_t>(wire.size()));
}

void GatewayMux::send(std::uint32_t channel_id, std::span<const std::int16_t> codes) {
  std::lock_guard<std::mutex> lock{mutex_};
  const auto it = channels_.find(channel_id);
  if (it == channels_.end()) {
    throw std::out_of_range{"GatewayMux: channel not opened"};
  }
  std::size_t i = 0;
  while (i < codes.size()) {
    const std::size_t n = std::min(codes.size() - i, core::kMaxSamplesPerFrame);
    const auto frame = it->second.encoder.encode(codes.subspan(i, n));
    ship_(it->second, channel_id, frame, static_cast<std::uint16_t>(n));
    i += n;
  }
}

void GatewayMux::send_encoded(std::uint32_t channel_id,
                              std::span<const std::uint8_t> frame,
                              std::uint16_t n_codes) {
  std::lock_guard<std::mutex> lock{mutex_};
  const auto it = channels_.find(channel_id);
  if (it == channels_.end()) {
    throw std::out_of_range{"GatewayMux: channel not opened"};
  }
  ship_(it->second, channel_id, frame, n_codes);
}

GatewayDemux::GatewayDemux(Transport& transport) : transport_(transport) {
  auto& reg = metrics::Registry::global();
  frames_metric_ = &reg.counter(metrics::names::kGatewayFramesDemuxed);
  bytes_metric_ = &reg.counter(metrics::names::kGatewayBytesReceived);
  crc_errors_metric_ = &reg.counter(metrics::names::kGatewayCrcErrors);
  resyncs_metric_ = &reg.counter(metrics::names::kGatewayResyncs);
  lost_envelopes_metric_ = &reg.counter(metrics::names::kGatewayLostEnvelopes);
  channels_gauge_ = &reg.gauge(metrics::names::kGatewayChannels);
}

void GatewayDemux::open_channel(std::uint32_t channel_id) {
  channels_.try_emplace(channel_id);
  channels_gauge_->set(static_cast<double>(channels_.size()));
}

const ChannelStats& GatewayDemux::channel_stats(std::uint32_t channel_id) const {
  const auto it = channels_.find(channel_id);
  if (it == channels_.end()) {
    throw std::out_of_range{"GatewayDemux: channel not opened"};
  }
  return it->second.stats;
}

const core::LinkStats& GatewayDemux::link_stats(std::uint32_t channel_id) const {
  const auto it = channels_.find(channel_id);
  if (it == channels_.end()) {
    throw std::out_of_range{"GatewayDemux: channel not opened"};
  }
  return it->second.decoder.stats();
}

std::size_t GatewayDemux::try_parse_at_(std::size_t offset) {
  const std::size_t avail = buffer_.size() - offset;
  const std::uint8_t* p = buffer_.data() + offset;
  if (avail < 2) return 0;
  if (p[0] != kEnvelopeSync0 || p[1] != kEnvelopeSync1) {
    ++resync_bytes_;
    resyncs_metric_->add(1);
    return 1;
  }
  if (avail < kEnvelopeHeaderBytes) return 0;
  const std::uint16_t length = get_u16(p + 13);
  if (p[2] != kEnvelopeVersion || length == 0) {
    ++resync_bytes_;
    resyncs_metric_->add(1);
    return 1;
  }
  const std::size_t total = envelope_wire_bytes(length);
  if (avail < total) return 0;

  const std::uint16_t wire_crc = get_u16(p + total - 2);
  const std::uint16_t calc_crc = core::crc16_ccitt(
      std::span<const std::uint8_t>{p + 2, total - 2 - kEnvelopeCrcBytes});
  if (wire_crc != calc_crc) {
    ++crc_errors_;
    crc_errors_metric_->add(1);
    return 1;  // corrupt: resync from the next byte
  }

  const std::uint32_t channel_id = get_u32(p + 3);
  const std::uint32_t sequence = get_u32(p + 7);
  const std::uint16_t n_codes = get_u16(p + 11);
  const auto it = channels_.find(channel_id);
  if (it == channels_.end()) {
    ++unknown_channel_envelopes_;
    return total;  // valid envelope, nobody to give it to — drop, not misroute
  }
  Channel& channel = it->second;
  if (channel.seen_sequence) {
    const std::uint32_t expected = channel.last_sequence + 1;
    const std::uint32_t gap = sequence - expected;  // u32 wraparound arithmetic
    if (gap != 0) {
      channel.stats.lost_envelopes += gap;
      lost_envelopes_metric_->add(gap);
    }
  }
  channel.seen_sequence = true;
  channel.last_sequence = sequence;
  ++channel.stats.envelopes_ok;

  const std::span<const std::uint8_t> payload{p + kEnvelopeHeaderBytes, length};
  if (on_envelope_) on_envelope_(channel_id, payload, n_codes);
  for (const auto& frame : channel.decoder.push(payload)) {
    ++channel.stats.frames_decoded;
    frames_metric_->add(1);
    channel.stats.codes_delivered += frame.samples.size();
    codes_delivered_this_pump_ += frame.samples.size();
    if (on_codes_) on_codes_(channel_id, frame.samples);
  }
  return total;
}

std::size_t GatewayDemux::pump() {
  codes_delivered_this_pump_ = 0;
  std::vector<std::uint8_t> incoming;
  const std::size_t n = transport_.recv(incoming);
  if (n > 0) {
    bytes_received_ += n;
    bytes_metric_->add(static_cast<std::uint64_t>(n));
    buffer_.insert(buffer_.end(), incoming.begin(), incoming.end());
  }
  std::size_t start = 0;
  for (;;) {
    const std::size_t consumed = try_parse_at_(start);
    if (consumed == 0) break;
    start += consumed;
  }
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<long>(start));
  return codes_delivered_this_pump_;
}

bool GatewayDemux::pump_until_bytes(std::uint64_t target, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    (void)pump();
    if (bytes_received_ >= target) return true;
    if (transport_.closed()) return bytes_received_ >= target;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::yield();
  }
}

}  // namespace tono::gateway
