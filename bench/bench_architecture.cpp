// E11 — architecture justification: why THIS modulator and THIS filter.
//
// The paper chose a second-order single-bit ΔΣ and a SINC³+FIR decimator.
// This bench reproduces the design-space comparison behind those choices:
//   (a) 1st-order vs 2nd-order modulator: SNR vs OSR (9 vs 15 dB/octave,
//       idle tones) — why one integrator is not enough for 12 bit at
//       OSR 128,
//   (b) SINC³+FIR vs one big single-stage FIR: response quality per
//       multiply — why the FPGA filter is a CIC cascade.
#include <cmath>
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/analog/incremental.hpp"

namespace {

using namespace tono;

double snr_for(int order, std::size_t osr, std::uint64_t seed = 42) {
  analog::ModulatorConfig mc;
  mc.order = order;
  mc.seed = seed;
  dsp::DecimationConfig dc;
  dc.total_decimation = osr;
  dc.cic_decimation = std::min<std::size_t>(osr, 32);
  const double rate = 128000.0 / static_cast<double>(osr);
  dc.cutoff_hz = rate / 2.0;
  dc.output_bits = 16;  // wide word: compare the modulators, not the word
  return bench::run_tone_test(mc, dc, 0.7, rate / 64.0, 4096).analysis.snr_db;
}

void modulator_order_comparison() {
  std::cout << "\n--- (a) Modulator order: 1st vs 2nd (the paper's choice) ---\n";
  TextTable t{"SNR vs OSR at -3.1 dBFS, 16-bit decimation word"};
  t.set_header({"OSR", "rate [S/s]", "1st order [dB]", "2nd order [dB]", "advantage [dB]"});
  SeriesWriter s1{"arch_order1_snr", "osr", "snr_db"};
  SeriesWriter s2{"arch_order2_snr", "osr", "snr_db"};
  for (std::size_t osr : {16u, 32u, 64u, 128u, 256u}) {
    const double a = snr_for(1, osr);
    const double b = snr_for(2, osr);
    t.add_row({format_double(static_cast<double>(osr), 0),
               format_double(128000.0 / static_cast<double>(osr), 0),
               format_double(a, 1), format_double(b, 1), format_double(b - a, 1)});
    s1.add(static_cast<double>(osr), a);
    s2.add(static_cast<double>(osr), b);
  }
  t.print(std::cout);
  s1.write_csv(std::cout);
  s2.write_csv(std::cout);
  std::cout << "-> the 1st-order loop cannot reach the 12-bit class at OSR 128;\n"
               "   the 2nd-order loop gains ~15 dB/octave and idle-tone immunity\n"
               "   — the reason the chip spends a second integrator.\n";
}

void decimation_architecture_comparison() {
  std::cout << "\n--- (b) Decimation: SINC^3 + FIR32 vs one single-stage FIR ---\n";

  // Paper architecture.
  dsp::DecimationConfig paper;
  dsp::DecimationChain chain_paper{paper};

  // Single-stage: the CIC degenerates to pass-through (R=1) and one FIR
  // running at 128 kHz must both cut at 500 Hz and reject all images —
  // which takes hundreds of taps.
  dsp::DecimationConfig single;
  single.cic_decimation = 1;
  single.fir_taps = 512;
  dsp::DecimationChain chain_single{single};

  auto worst_gain = [](const dsp::DecimationChain& c, double f_lo, double f_hi) {
    double worst = 0.0;
    for (double f = f_lo; f <= f_hi; f += 25.0) {
      worst = std::max(worst, c.magnitude_at(f));
    }
    return 20.0 * std::log10(std::max(worst, 1e-12));
  };
  auto passband_ripple = [](const dsp::DecimationChain& c) {
    double lo = 1e9;
    double hi = -1e9;
    for (double f = 10.0; f <= 350.0; f += 20.0) {
      const double g = 20.0 * std::log10(c.magnitude_at(f));
      lo = std::min(lo, g);
      hi = std::max(hi, g);
    }
    return hi - lo;
  };

  // Work per 1 kS/s output sample.
  // Paper: CIC is multiplier-free (3 adds / 128-kHz input sample + 3 subs /
  // 4-kHz sample); FIR32 = 32 multiplies per 1 kHz output.
  const double paper_mults = 32.0;
  const double paper_adds = 3.0 * 128.0 + 3.0 * 4.0 + 32.0;
  // Single-stage 512-tap at 128 kHz, polyphase-decimated by 128:
  // 512 multiplies per output (each output is one 512-tap inner product).
  const double single_mults = 512.0;
  const double single_adds = 512.0;

  TextTable t{"Architecture comparison"};
  t.set_header({"metric", "SINC^3 + FIR32 (paper)", "single-stage FIR512"});
  t.add_row({"multiplies / output", format_double(paper_mults, 0),
             format_double(single_mults, 0)});
  t.add_row({"adds / output", format_double(paper_adds, 0),
             format_double(single_adds, 0)});
  t.add_row({"coefficient memory", "32 words", "512 words"});
  t.add_row({"passband ripple (10-350 Hz)",
             format_double(passband_ripple(chain_paper), 3) + " dB",
             format_double(passband_ripple(chain_single), 3) + " dB"});
  // The first image band (600-1400 Hz folds onto 0-400 Hz) is limited by
  // each filter's transition skirt; higher bands show the cascade's nulls.
  t.add_row({"first image band (0.6-1.4 kHz)",
             format_double(worst_gain(chain_paper, 600.0, 1400.0), 1) + " dB",
             format_double(worst_gain(chain_single, 600.0, 1400.0), 1) + " dB"});
  t.add_row({"higher image bands (1.6-32 kHz)",
             format_double(worst_gain(chain_paper, 1600.0, 32000.0), 1) + " dB",
             format_double(worst_gain(chain_single, 1600.0, 32000.0), 1) + " dB"});
  t.add_row({"group delay", format_double(chain_paper.group_delay_seconds() * 1e3, 2) + " ms",
             format_double(chain_single.group_delay_seconds() * 1e3, 2) + " ms"});
  t.print(std::cout);
  std::cout << "-> the cascade gets comparable passband quality with 16x fewer\n"
               "   multipliers and 16x less coefficient storage — the standard\n"
               "   argument for CIC first stages in FPGA decimators (the paper's\n"
               "   implementation target).\n";
}

void incremental_mode_comparison() {
  std::cout << "\n--- (c) Scanned-array readout: free-running vs incremental ΔΣ ---\n";
  TextTable t{"Per-element conversion cost when scanning the array"};
  t.set_header({"mode", "time/element", "resolution", "array frame (2x2)"});
  // Free-running: filter transient (≈ group delay, E4) + dwell.
  dsp::DecimationChain chain{dsp::DecimationConfig{}};
  const double transient_s = chain.group_delay_seconds();
  const double dwell_s = 4.0 / 1000.0;
  const double free_running = transient_s + dwell_s;
  t.add_row({"free-running + SINC^3/FIR",
             format_double((transient_s + dwell_s) * 1e3, 2) + " ms (settle+dwell)",
             "12 bit", format_double(4.0 * free_running * 1e3, 1) + " ms"});
  for (std::size_t cycles : {128u, 256u, 512u}) {
    analog::IncrementalConfig ic;
    ic.cycles = cycles;
    analog::IncrementalConverter conv{ic};
    t.add_row({"incremental, N = " + std::to_string(cycles),
               format_double(conv.conversion_time_s() * 1e3, 2) + " ms",
               format_double(conv.ideal_resolution_bits(), 1) + " bit (ideal)",
               format_double(4.0 * conv.conversion_time_s() * 1e3, 1) + " ms"});
  }
  t.print(std::cout);
  std::cout << "-> resetting the loop per element removes the decimation-filter\n"
               "   memory: a 2x2 frame drops from ~33 ms to ~8 ms at N = 256 —\n"
               "   the standard upgrade path for multiplexed sensor arrays and a\n"
               "   direct answer to the paper's §2.2 settling constraint.\n";
}

}  // namespace

int main() {
  bench::print_header("E11", "Architecture choices: modulator order and filter cascade");
  modulator_order_comparison();
  decimation_architecture_comparison();
  incremental_mode_comparison();
  return 0;
}
