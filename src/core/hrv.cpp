#include "src/core/hrv.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/statistics.hpp"

namespace tono::core {

HrvMetrics compute_hrv(std::span<const double> intervals_s) {
  HrvMetrics m;
  // < 3 intervals would put 0 or 1 successive differences into the RMSSD
  // denominator below — a silent 0/0 NaN for the single-interval case.
  // Return all-zero (and valid == false) instead of propagating NaN into
  // reports and JSON exports.
  if (intervals_s.size() < 3) return m;
  m.valid = true;
  m.beat_count = intervals_s.size() + 1;
  m.mean_rr_s = mean(intervals_s);
  m.sdnn_s = stddev(intervals_s);

  double ssd_acc = 0.0;
  std::size_t nn50 = 0;
  for (std::size_t i = 1; i < intervals_s.size(); ++i) {
    const double d = intervals_s[i] - intervals_s[i - 1];
    ssd_acc += d * d;
    if (std::abs(d) > 0.050) ++nn50;
  }
  const auto n_diff = static_cast<double>(intervals_s.size() - 1);
  m.rmssd_s = std::sqrt(ssd_acc / n_diff);
  m.pnn50 = static_cast<double>(nn50) / n_diff;

  // Poincaré: SD1² = var(RRn − RRn+1)/2, SD2² = 2·SDNN² − SD1².
  m.sd1_s = m.rmssd_s / std::sqrt(2.0);
  const double sd2_sq = 2.0 * m.sdnn_s * m.sdnn_s - m.sd1_s * m.sd1_s;
  m.sd2_s = sd2_sq > 0.0 ? std::sqrt(sd2_sq) : 0.0;
  return m;
}

HrvMetrics compute_hrv(const BeatAnalysis& beats) {
  std::vector<double> intervals;
  if (beats.beats.size() >= 2) {
    intervals.reserve(beats.beats.size() - 1);
    for (std::size_t i = 1; i < beats.beats.size(); ++i) {
      intervals.push_back(beats.beats[i].upstroke_s - beats.beats[i - 1].upstroke_s);
    }
  }
  return compute_hrv(intervals);
}

RhythmClassification classify_rhythm(const HrvMetrics& hrv) {
  RhythmClassification out;
  out.beat_count = hrv.beat_count;
  if (hrv.beat_count < 8 || hrv.mean_rr_s <= 0.0) return out;

  // Normalized RMSSD: beat-to-beat irregularity relative to the rate.
  // Sinus rhythm — including strong respiratory sinus arrhythmia at ~5
  // beats/breath — stays below ~0.08; AF's irregularly-irregular intervals
  // sit above ~0.15. (The Poincaré SD1/SD2 ratio is reported in HrvMetrics
  // but is not discriminative when white beat-interval jitter dominates the
  // short axis, as it does for wearable-grade interval series.)
  const double nrmssd = hrv.rmssd_s / hrv.mean_rr_s;
  out.irregularity_score = std::clamp((nrmssd - 0.04) / 0.16, 0.0, 1.0);
  out.likely_af = out.irregularity_score >= 0.5;
  return out;
}

}  // namespace tono::core
