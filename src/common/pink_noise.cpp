#include "src/common/pink_noise.hpp"

#include <cmath>
#include <stdexcept>

#include "src/common/checkpoint.hpp"

namespace tono {

PinkNoise::PinkNoise(Rng rng, std::size_t octaves) : rng_(rng), octaves_(octaves) {
  if (octaves_ < 2 || octaves_ > kMaxOctaves) {
    throw std::invalid_argument{"PinkNoise: octaves must be in [2, 24]"};
  }
  for (std::size_t k = 0; k < octaves_; ++k) rows_[k] = rng_.gaussian();
  // Sum of `octaves` unit-variance independent rows → variance = octaves;
  // normalize to unit variance.
  white_scale_ = 1.0 / std::sqrt(static_cast<double>(octaves_));
}

double PinkNoise::next() noexcept {
  ++counter_;
  // Voss-McCartney: re-draw row k when bit k of the counter toggles, i.e.
  // the lowest set bit selects exactly one row per sample.
  const std::uint64_t ctz_mask = counter_ & (~counter_ + 1);
  std::size_t row = 0;
  std::uint64_t m = ctz_mask;
  while (m > 1 && row + 1 < octaves_) {
    m >>= 1;
    ++row;
  }
  rows_[row] = rng_.gaussian();
  double sum = 0.0;
  for (std::size_t k = 0; k < octaves_; ++k) sum += rows_[k];
  return sum * white_scale_;
}

void PinkNoise::fill_next(double* dest, std::size_t n) noexcept {
  // next() consumes exactly one Gaussian per sample regardless of state, so
  // the draws bulk-generate; the replay of the row updates lives in
  // fill_next_from (shared with the bank's batched-draw path).
  double draws[kFillChunk];
  std::size_t done = 0;
  while (done < n) {
    const std::size_t chunk = std::min(n - done, kFillChunk);
    rng_.fill_gaussian(draws, chunk);
    fill_next_from(draws, dest + done, chunk);
    done += chunk;
  }
}

void PinkNoise::fill_next_from(const double* draws, double* dest,
                               std::size_t n) noexcept {
  // The Voss-McCartney row replacement and the full-row sum replay in the
  // scalar order (the sum must be recomputed per sample — a running sum
  // would reorder the additions and break bit-identity with next()).
  for (std::size_t j = 0; j < n; ++j) {
    ++counter_;
    const std::uint64_t ctz_mask = counter_ & (~counter_ + 1);
    std::size_t row = 0;
    std::uint64_t m = ctz_mask;
    while (m > 1 && row + 1 < octaves_) {
      m >>= 1;
      ++row;
    }
    rows_[row] = draws[j];
    double sum = 0.0;
    for (std::size_t k = 0; k < octaves_; ++k) sum += rows_[k];
    dest[j] = sum * white_scale_;
  }
}

void PinkNoise::serialize(CheckpointWriter& out) const {
  out.section("pink_noise");
  rng_.serialize(out);
  out.size(octaves_);
  for (std::size_t k = 0; k < octaves_; ++k) out.f64(rows_[k]);
  out.u64(counter_);
}

void PinkNoise::restore(CheckpointReader& in) {
  in.section("pink_noise");
  rng_.restore(in);
  const std::size_t octaves = in.size();
  if (octaves != octaves_) {
    throw CheckpointError{"PinkNoise checkpoint octave count " +
                          std::to_string(octaves) + " != configured " +
                          std::to_string(octaves_)};
  }
  for (std::size_t k = 0; k < octaves_; ++k) rows_[k] = in.f64();
  counter_ = in.u64();
}

}  // namespace tono
