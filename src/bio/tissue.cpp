#include "src/bio/tissue.hpp"

#include <cmath>
#include <stdexcept>

namespace tono::bio {

TissueCoupling::TissueCoupling(const TissueConfig& config) : config_(config) {
  if (config_.vessel_depth_m < 0.0 || config_.attenuation_length_m <= 0.0) {
    throw std::invalid_argument{"TissueCoupling: bad depth parameters"};
  }
  if (config_.hold_down_width_mmhg <= 0.0 || config_.lateral_sigma_m <= 0.0) {
    throw std::invalid_argument{"TissueCoupling: bad width parameters"};
  }
  if (config_.peak_transmission <= 0.0 || config_.peak_transmission > 1.0) {
    throw std::invalid_argument{"TissueCoupling: peak transmission must be in (0,1]"};
  }
}

double TissueCoupling::transmission(double hold_down_mmhg) const noexcept {
  const double d = (hold_down_mmhg - config_.optimal_hold_down_mmhg) /
                   config_.hold_down_width_mmhg;
  return config_.peak_transmission * std::exp(-0.5 * d * d);
}

double TissueCoupling::depth_attenuation() const noexcept {
  return std::exp(-config_.vessel_depth_m / config_.attenuation_length_m);
}

double TissueCoupling::lateral_attenuation(double offset_m) const noexcept {
  const double r = offset_m / config_.lateral_sigma_m;
  return std::exp(-0.5 * r * r);
}

double TissueCoupling::contact_pressure_mmhg(double arterial_mmhg, double map_mmhg,
                                             double hold_down_mmhg,
                                             double lateral_offset_m) const noexcept {
  const double gain = pulse_gain(hold_down_mmhg, lateral_offset_m);
  return hold_down_mmhg + gain * (arterial_mmhg - map_mmhg);
}

double TissueCoupling::pulse_gain(double hold_down_mmhg,
                                  double lateral_offset_m) const noexcept {
  return transmission(hold_down_mmhg) * depth_attenuation() *
         lateral_attenuation(lateral_offset_m);
}

}  // namespace tono::bio
