// fixed_point.hpp — two's-complement fixed-point arithmetic helpers.
//
// The paper's decimation filter runs in an FPGA; our CIC and FIR stages model
// it bit-exactly with integer arithmetic. This header provides the saturating
// quantizer and word-width bookkeeping those stages share, so overflow
// behaviour is explicit rather than accidental.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>

namespace tono {

/// Saturates a wide integer into a signed `bits`-wide two's-complement range.
/// bits must be in [2, 63].
[[nodiscard]] constexpr std::int64_t saturate_to_bits(std::int64_t value, int bits) {
  if (bits < 2 || bits > 63) throw std::invalid_argument{"saturate_to_bits: bits out of range"};
  const std::int64_t max_v = (std::int64_t{1} << (bits - 1)) - 1;
  const std::int64_t min_v = -(std::int64_t{1} << (bits - 1));
  return std::clamp(value, min_v, max_v);
}

/// Wraps (modulo) a wide integer into a signed `bits`-wide range — the
/// natural behaviour of CIC integrators, which rely on modular arithmetic.
[[nodiscard]] constexpr std::int64_t wrap_to_bits(std::int64_t value, int bits) {
  if (bits < 2 || bits > 63) throw std::invalid_argument{"wrap_to_bits: bits out of range"};
  const auto u = static_cast<std::uint64_t>(value);
  const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
  std::uint64_t w = u & mask;
  // Sign-extend.
  const std::uint64_t sign_bit = std::uint64_t{1} << (bits - 1);
  if (w & sign_bit) w |= ~mask;
  return static_cast<std::int64_t>(w);
}

/// Quantizes a real value in [-1, 1) to a signed `bits`-wide integer with
/// round-to-nearest and saturation: the ADC output word format.
[[nodiscard]] constexpr std::int64_t quantize_to_bits(double value, int bits) {
  if (bits < 2 || bits > 62) throw std::invalid_argument{"quantize_to_bits: bits out of range"};
  const double scale = static_cast<double>(std::int64_t{1} << (bits - 1));
  const double scaled = value * scale;
  const auto rounded =
      static_cast<std::int64_t>(scaled >= 0.0 ? scaled + 0.5 : scaled - 0.5);
  return saturate_to_bits(rounded, bits);
}

/// Converts a signed `bits`-wide integer code back to a real value in [-1, 1).
[[nodiscard]] constexpr double dequantize_from_bits(std::int64_t code, int bits) {
  const double scale = static_cast<double>(std::int64_t{1} << (bits - 1));
  return static_cast<double>(code) / scale;
}

/// Signed Q-format value (Q(integer_bits).(frac_bits)) stored in int64.
/// Minimal operation set used by the FIR coefficient quantization path.
class QFormat {
 public:
  constexpr QFormat(int integer_bits, int frac_bits)
      : integer_bits_(integer_bits), frac_bits_(frac_bits) {
    if (integer_bits < 1 || frac_bits < 0 || integer_bits + frac_bits > 62) {
      throw std::invalid_argument{"QFormat: invalid widths"};
    }
  }

  [[nodiscard]] constexpr int total_bits() const noexcept { return integer_bits_ + frac_bits_; }
  [[nodiscard]] constexpr int frac_bits() const noexcept { return frac_bits_; }

  /// Real → fixed code (round-to-nearest, saturating).
  [[nodiscard]] constexpr std::int64_t encode(double value) const {
    const double scaled = value * static_cast<double>(std::int64_t{1} << frac_bits_);
    const auto rounded =
        static_cast<std::int64_t>(scaled >= 0.0 ? scaled + 0.5 : scaled - 0.5);
    return saturate_to_bits(rounded, total_bits());
  }

  /// Fixed code → real.
  [[nodiscard]] constexpr double decode(std::int64_t code) const noexcept {
    return static_cast<double>(code) / static_cast<double>(std::int64_t{1} << frac_bits_);
  }

  /// Quantization step in real units.
  [[nodiscard]] constexpr double lsb() const noexcept {
    return 1.0 / static_cast<double>(std::int64_t{1} << frac_bits_);
  }

 private:
  int integer_bits_;
  int frac_bits_;
};

}  // namespace tono
