file(REMOVE_RECURSE
  "../bench/bench_fig4_mux_settling"
  "../bench/bench_fig4_mux_settling.pdb"
  "CMakeFiles/bench_fig4_mux_settling.dir/bench_fig4_mux_settling.cpp.o"
  "CMakeFiles/bench_fig4_mux_settling.dir/bench_fig4_mux_settling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_mux_settling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
