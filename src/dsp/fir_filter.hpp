// fir_filter.hpp — streaming FIR filters (floating point and bit-exact
// fixed point) with optional decimation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace tono {
class CheckpointReader;
class CheckpointWriter;
}  // namespace tono

namespace tono::dsp {

/// Streaming direct-form FIR with optional decimation.
/// push() accepts one input sample and yields an output only on the
/// decimation phase, matching how the FPGA filter clocks.
class FirFilter {
 public:
  /// `decimation` >= 1; 1 means no rate change.
  explicit FirFilter(std::vector<double> coefficients, std::size_t decimation = 1);

  /// Feeds one sample; returns an output every `decimation` inputs.
  [[nodiscard]] std::optional<double> push(double x);

  /// Convenience batch form.
  [[nodiscard]] std::vector<double> process(std::span<const double> xs);

  /// Clears the delay line and phase.
  void reset();

  [[nodiscard]] std::size_t tap_count() const noexcept { return coeffs_.size(); }
  [[nodiscard]] std::size_t decimation() const noexcept { return decimation_; }
  [[nodiscard]] const std::vector<double>& coefficients() const noexcept { return coeffs_; }

  /// Group delay in input samples (linear phase assumed): (N-1)/2.
  [[nodiscard]] double group_delay_samples() const noexcept {
    return (static_cast<double>(coeffs_.size()) - 1.0) / 2.0;
  }

  /// Checkpointing: delay line, write cursor and decimation phase.
  void serialize(CheckpointWriter& out) const;
  void restore(CheckpointReader& in);

 private:
  std::vector<double> coeffs_;
  std::vector<double> delay_;   // circular delay line
  std::size_t write_pos_{0};
  std::size_t decimation_;
  std::size_t phase_{0};
};

/// Bit-exact fixed-point FIR: integer inputs, integer coefficients
/// (value = code / 2^coeff_frac_bits), accumulator truncated to the output
/// word. Models the FPGA's 32-tap second stage including coefficient and
/// accumulator quantization.
class FixedPointFir {
 public:
  /// - `coefficient_codes`: quantized taps (see quantize_coefficients)
  /// - `coeff_frac_bits`: fractional bits of the coefficient format
  /// - `output_bits`: saturating output word width (the paper's 12)
  /// - `decimation`: output rate divider
  FixedPointFir(std::vector<std::int32_t> coefficient_codes, int coeff_frac_bits,
                int output_bits, std::size_t decimation = 1);

  /// Feeds one integer sample; returns the saturated output word on the
  /// decimation phase.
  [[nodiscard]] std::optional<std::int64_t> push(std::int64_t x);

  [[nodiscard]] std::vector<std::int64_t> process(std::span<const std::int64_t> xs);

  void reset();

  [[nodiscard]] int output_bits() const noexcept { return output_bits_; }
  [[nodiscard]] std::size_t tap_count() const noexcept { return coeffs_.size(); }

  /// Checkpointing: delay line, write cursor and decimation phase.
  void serialize(CheckpointWriter& out) const;
  void restore(CheckpointReader& in);

 private:
  std::vector<std::int32_t> coeffs_;
  std::vector<std::int64_t> delay_;
  std::size_t write_pos_{0};
  int coeff_frac_bits_;
  int output_bits_;
  std::size_t decimation_;
  std::size_t phase_{0};
};

}  // namespace tono::dsp
