#include "src/dsp/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "src/common/math_utils.hpp"

namespace tono::dsp {
namespace {

void bit_reverse_permute(std::span<Complex> x) {
  const std::size_t n = x.size();
  std::size_t j = 0;
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
}

void fft_core(std::span<Complex> x, bool inverse) {
  const std::size_t n = x.size();
  if (!is_pow2(n)) throw std::invalid_argument{"fft: size must be a power of two"};
  if (n <= 1) return;
  bit_reverse_permute(x);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const Complex w_len{std::cos(angle), std::sin(angle)};
    for (std::size_t start = 0; start < n; start += len) {
      Complex w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex even = x[start + k];
        const Complex odd = x[start + k + len / 2] * w;
        x[start + k] = even + odd;
        x[start + k + len / 2] = even - odd;
        w *= w_len;
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& v : x) v *= inv_n;
  }
}

}  // namespace

void fft_inplace(std::span<Complex> x) { fft_core(x, /*inverse=*/false); }

void ifft_inplace(std::span<Complex> x) { fft_core(x, /*inverse=*/true); }

std::vector<Complex> fft_real(std::span<const double> x) {
  const std::size_t n = next_pow2(x.size());
  std::vector<Complex> buf(n, Complex{0.0, 0.0});
  for (std::size_t i = 0; i < x.size(); ++i) buf[i] = Complex{x[i], 0.0};
  fft_inplace(buf);
  return buf;
}

std::vector<double> magnitude_spectrum(std::span<const double> x) {
  if (!is_pow2(x.size())) {
    throw std::invalid_argument{"magnitude_spectrum: size must be a power of two"};
  }
  const auto spec = fft_real(x);
  const std::size_t n = spec.size();
  const std::size_t half = n / 2;
  std::vector<double> mag(half + 1, 0.0);
  const double scale = 1.0 / static_cast<double>(n);
  for (std::size_t k = 0; k <= half; ++k) {
    const double factor = (k == 0 || k == half) ? 1.0 : 2.0;
    mag[k] = factor * std::abs(spec[k]) * scale;
  }
  return mag;
}

std::vector<double> power_spectrum(std::span<const double> x) {
  if (!is_pow2(x.size())) {
    throw std::invalid_argument{"power_spectrum: size must be a power of two"};
  }
  const auto spec = fft_real(x);
  const std::size_t n = spec.size();
  const std::size_t half = n / 2;
  std::vector<double> pwr(half + 1, 0.0);
  const double scale = 1.0 / static_cast<double>(n);
  for (std::size_t k = 0; k <= half; ++k) {
    const double mag = std::abs(spec[k]) * scale;
    // One-sided power: double everything except DC/Nyquist, then the power
    // of an amplitude-A sine is A^2/2 at its bin.
    const double factor = (k == 0 || k == half) ? 1.0 : 2.0;
    pwr[k] = factor * mag * mag;
  }
  return pwr;
}

}  // namespace tono::dsp
