// scenario.hpp — time-varying physiological scenarios.
//
// The paper's §1 motivation is that cuffs "are only able to accomplish
// single measurements" and so cannot record a blood-pressure *waveform* —
// or a fast trend. A scenario drives the pulse generator's setpoints over
// time (exercise ramps, hypotensive episodes, recovery), producing the
// dynamics that only a continuous sensor can follow.
//
// Interpolation contract: setpoints are traced with a monotonicity-
// preserving cubic (PCHIP), with diastolic and pulse pressure (sys − dia)
// as the interpolated quantities. Because pulse pressure is positive at
// every keyframe and PCHIP never overshoots the keyframe envelope, the
// interpolated systolic strictly exceeds diastolic at *every* query time —
// `apply()` can never throw out of `set_targets` mid-transition. Queries
// outside [t_min, t_max] clamp to the boundary keyframes.
#pragma once

#include <string>
#include <vector>

#include "src/bio/pulse_generator.hpp"
#include "src/common/interpolation.hpp"

namespace tono::bio {

/// One setpoint keyframe; values are traced with monotone cubics between
/// frames (smooth, and never overshooting the keyframe envelope).
struct ScenarioKeyframe {
  double time_s{0.0};
  double systolic_mmhg{120.0};
  double diastolic_mmhg{80.0};
  double heart_rate_bpm{72.0};
};

class ScenarioProfile {
 public:
  /// Interpolated pulse pressure never drops below this floor, even for
  /// adversarial keyframe sets that pinch sys towards dia.
  static constexpr double kMinPulsePressureMmhg = 5.0;

  /// Keyframes must be in strictly increasing time order, with >= 2 frames,
  /// systolic > diastolic and heart rate in (20, 250] at every frame.
  explicit ScenarioProfile(std::vector<ScenarioKeyframe> keyframes,
                           std::string name = "scenario");

  /// Interpolated targets at a given time. t_s is clamped to
  /// [t_min, t_max]; the result always satisfies
  /// systolic >= diastolic + kMinPulsePressureMmhg.
  [[nodiscard]] ScenarioKeyframe at(double t_s) const;

  /// Pushes the targets for time t into a generator. Never throws for a
  /// validly constructed profile.
  void apply(ArterialPulseGenerator& generator, double t_s) const;

  [[nodiscard]] double duration_s() const noexcept;
  [[nodiscard]] double t_min() const noexcept { return t_min_; }
  [[nodiscard]] double t_max() const noexcept { return t_max_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// The raw keyframes (validation uses these to locate setpoint
  /// transitions for transient-response metrics).
  [[nodiscard]] const std::vector<ScenarioKeyframe>& keyframes() const noexcept {
    return keyframes_;
  }

  /// Preset: rest → exercise ramp (HR 72→130, BP 120/80→165/95) → recovery.
  [[nodiscard]] static ScenarioProfile exercise(double total_s = 180.0);
  /// Preset: stable, then a fast hypotensive episode and partial recovery
  /// (the intensive-care event a cuff cycle would miss, cf. ref. [2]).
  [[nodiscard]] static ScenarioProfile hypotensive_episode(double total_s = 120.0);
  /// Preset: paroxysmal arrhythmia — bursts of rapid irregular rate with
  /// narrowed pulse pressure (reduced ventricular filling), interleaved
  /// with sinus rest. Pair with PulseConfig::af_irregularity for the
  /// beat-to-beat component; this profile carries the rate/BP envelope.
  [[nodiscard]] static ScenarioProfile arrhythmia_train(double total_s = 240.0);
  /// Preset: slow reference drift between cuff recalibrations — BP readings
  /// sag a few mmHg over each inter-calibration interval, then snap back
  /// when the cuff re-anchors the offset (sawtooth with fast recovery
  /// edges).
  [[nodiscard]] static ScenarioProfile cuff_recalibration_drift(double total_s = 300.0);
  /// Preset: sensor aging surrogate — the truth trace a degrading membrane
  /// would be fighting: slowly decaying pulse pressure and a small baseline
  /// sag over the session, monotone and without recovery.
  [[nodiscard]] static ScenarioProfile sensor_aging(double total_s = 600.0);

 private:
  struct Columns;  // keyframes split into per-quantity knot vectors
  ScenarioProfile(const std::vector<ScenarioKeyframe>& keyframes, const Columns& columns,
                  std::string name);

  std::string name_;
  std::vector<ScenarioKeyframe> keyframes_;
  // Diastolic and pulse pressure are the interpolated pair (both positive,
  // PCHIP keeps them inside the keyframe envelope), so sys = dia + pp is
  // valid by construction. Interpolating sys directly alongside dia would
  // let independent curvature pinch them together mid-segment.
  MonotoneCubicInterpolator dia_;
  MonotoneCubicInterpolator pp_;
  MonotoneCubicInterpolator hr_;
  double t_min_;
  double t_max_;
};

}  // namespace tono::bio
