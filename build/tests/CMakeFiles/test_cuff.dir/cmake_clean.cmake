file(REMOVE_RECURSE
  "CMakeFiles/test_cuff.dir/test_cuff.cpp.o"
  "CMakeFiles/test_cuff.dir/test_cuff.cpp.o.d"
  "test_cuff"
  "test_cuff.pdb"
  "test_cuff[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cuff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
