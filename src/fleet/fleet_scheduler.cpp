#include "src/fleet/fleet_scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <stdexcept>
#include <thread>
#include <utility>

#include "src/common/checkpoint.hpp"
#include "src/common/rng.hpp"

namespace tono::fleet {

FleetScheduler::FleetScheduler(FleetConfig config, WardAggregator& ward)
    : config_(std::move(config)), ward_(ward) {
  if (config_.frames_per_step == 0) {
    throw std::invalid_argument{"FleetScheduler: frames_per_step must be > 0"};
  }
  if (config_.session_id_stride == 0) {
    throw std::invalid_argument{"FleetScheduler: session_id_stride must be > 0"};
  }
  if (config_.threads != 1) pool_ = std::make_unique<ThreadPool>(config_.threads);
  auto& reg = metrics::Registry::global();
  admitted_metric_ = &reg.counter(metrics::names::kFleetSessionsAdmitted);
  discharged_metric_ = &reg.counter(metrics::names::kFleetSessionsDischarged);
  quarantined_metric_ = &reg.counter(metrics::names::kFleetSessionsQuarantined);
  recoveries_metric_ = &reg.counter(metrics::names::kFleetRecoveries);
  retired_metric_ = &reg.counter(metrics::names::kFleetRetired);
  batches_metric_ = &reg.counter(metrics::names::kFleetBatches);
  frames_metric_ = &reg.counter(metrics::names::kFleetFrames);
  checkpoints_written_metric_ = &reg.counter(metrics::names::kFleetCheckpointsWritten);
  checkpoints_restored_metric_ = &reg.counter(metrics::names::kFleetCheckpointsRestored);
  checkpoints_rejected_metric_ = &reg.counter(metrics::names::kFleetCheckpointsRejected);
  batch_wall_ = &reg.timer(metrics::names::kFleetBatchWall);
  active_gauge_ = &reg.gauge(metrics::names::kFleetSessionsActive);
}

FleetScheduler::~FleetScheduler() = default;

std::uint64_t FleetScheduler::session_seed(std::size_t session_id) const {
  // The SweepRunner derivation: depends only on (base_seed, stream_name,
  // global session id), so a solo harness can reproduce any fleet session
  // exactly — and a shard of a hospital (same base_seed/stream_name, ids
  // mapped through offset/stride) draws the very same seed for it.
  return Rng{config_.base_seed}
      .fork_named(config_.stream_name)
      .fork(static_cast<std::uint64_t>(session_id))
      .next_u64();
}

std::uint32_t FleetScheduler::admit(SessionConfig config, std::string label) {
  const auto index = sessions_.size();
  const auto id = static_cast<std::uint32_t>(
      config_.session_id_offset + index * config_.session_id_stride);
  if (config.seed == 0) config.seed = session_seed(id);
  if (config.code_ring_capacity < config_.frames_per_step) {
    // In serial mode nothing drains mid-batch; a ring smaller than one
    // batch would wedge a blocking push forever.
    throw std::invalid_argument{
        "FleetScheduler: code ring capacity must cover one batch "
        "(frames_per_step)"};
  }
  Slot slot;
  slot.session = std::make_unique<PatientSession>(id, std::move(config));
  ward_.attach(*slot.session, std::move(label));
  ward_.set_lifecycle(id, SessionState::kAdmitted);
  sessions_.push_back(std::move(slot));
  admitted_metric_->add(1);
  active_gauge_->set(static_cast<double>(active_sessions()));
  return id;
}

FleetScheduler::Slot* FleetScheduler::find_(std::uint32_t id) {
  // Invert the id mapping: id = offset + index·stride.
  if (id < config_.session_id_offset) return nullptr;
  const std::uint32_t delta = id - config_.session_id_offset;
  if (delta % config_.session_id_stride != 0) return nullptr;
  const std::size_t index = delta / config_.session_id_stride;
  return index < sessions_.size() ? &sessions_[index] : nullptr;
}

const FleetScheduler::Slot* FleetScheduler::find_(std::uint32_t id) const {
  return const_cast<FleetScheduler*>(this)->find_(id);
}

void FleetScheduler::pause(std::uint32_t id) {
  Slot* slot = find_(id);
  if (slot == nullptr) return;
  if (slot->state == SessionState::kRunning || slot->state == SessionState::kAdmitted) {
    slot->state = SessionState::kPaused;
    ward_.set_lifecycle(id, slot->state);
    active_gauge_->set(static_cast<double>(active_sessions()));
  }
}

void FleetScheduler::resume(std::uint32_t id) {
  Slot* slot = find_(id);
  if (slot == nullptr || slot->state != SessionState::kPaused) return;
  slot->state = slot->session->admitted() ? SessionState::kRunning
                                          : SessionState::kAdmitted;
  ward_.set_lifecycle(id, slot->state);
  active_gauge_->set(static_cast<double>(active_sessions()));
}

void FleetScheduler::discharge(std::uint32_t id) {
  Slot* slot = find_(id);
  if (slot == nullptr) return;
  if (slot->state == SessionState::kDischarged ||
      slot->state == SessionState::kQuarantined ||
      slot->state == SessionState::kRetired) {
    return;
  }
  slot->state = SessionState::kDischarged;
  ward_.set_lifecycle(id, slot->state);
  (void)ward_.drain_once();  // collect anything still queued
  ward_.settle();
  discharged_metric_->add(1);
  active_gauge_->set(static_cast<double>(active_sessions()));
}

SessionState FleetScheduler::state(std::uint32_t id) const {
  const Slot* slot = find_(id);
  if (slot == nullptr) throw std::out_of_range{"FleetScheduler: unknown session id"};
  return slot->state;
}

const std::string& FleetScheduler::quarantine_reason(std::uint32_t id) const {
  const Slot* slot = find_(id);
  if (slot == nullptr) throw std::out_of_range{"FleetScheduler: unknown session id"};
  return slot->quarantine_reason;
}

PatientSession* FleetScheduler::session(std::uint32_t id) {
  Slot* slot = find_(id);
  return slot != nullptr ? slot->session.get() : nullptr;
}

std::size_t FleetScheduler::active_sessions() const {
  std::size_t n = 0;
  for (const auto& slot : sessions_) {
    if (slot.state == SessionState::kAdmitted || slot.state == SessionState::kRunning ||
        slot.state == SessionState::kRecovering) {
      ++n;
    }
  }
  return n;
}

std::size_t FleetScheduler::strikes(std::uint32_t id) const {
  const Slot* slot = find_(id);
  if (slot == nullptr) throw std::out_of_range{"FleetScheduler: unknown session id"};
  return slot->strikes;
}

void FleetScheduler::sync_fault_log_(Slot& slot) {
  const auto& log = slot.session->fault_log();
  for (; slot.fault_log_synced < log.size(); ++slot.fault_log_synced) {
    ward_.note_fault(slot.session->id(), log[slot.fault_log_synced]);
  }
}

void FleetScheduler::quarantine_(Slot& slot, const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    slot.quarantine_reason = e.what();
  } catch (...) {
    slot.quarantine_reason = "unknown exception";
  }
  sync_fault_log_(slot);  // the injected fault precedes the verdict in the log
  const std::uint32_t id = slot.session->id();
  ++slot.strikes;
  if (slot.strikes > config_.max_readmits) {
    slot.state = SessionState::kRetired;
    ward_.note_fault(id, "retired after " + std::to_string(config_.max_readmits) +
                             " readmission(s): " + slot.quarantine_reason);
    ward_.set_lifecycle(id, slot.state, slot.quarantine_reason);
    retired_metric_->add(1);
    return;
  }
  slot.state = SessionState::kQuarantined;
  // Deterministic backoff: batches, not wall time, doubling per strike.
  const std::size_t shift = std::min<std::size_t>(slot.strikes - 1, 16);
  const std::uint64_t backoff =
      static_cast<std::uint64_t>(config_.readmit_backoff_batches) << shift;
  slot.eligible_batch = batch_index_ + backoff;
  ward_.note_fault(id, "quarantined (strike " + std::to_string(slot.strikes) + "/" +
                           std::to_string(config_.max_readmits + 1) +
                           "): " + slot.quarantine_reason);
  ward_.set_lifecycle(id, slot.state, slot.quarantine_reason);
  quarantined_metric_->add(1);
}

void FleetScheduler::readmit_from_checkpoint_(Slot& slot) {
  // A throwing step consumes nothing — no frames, no Rng draws, and the
  // quarantining batch ended with a full drain — so the parked object IS the
  // last good checkpoint. Capture it and resume a freshly constructed
  // session from the blob: recovery goes through the same restore path a
  // process restart uses, instead of trusting whatever state the quarantined
  // object accumulated.
  const std::uint32_t id = slot.session->id();
  try {
    const auto blob = slot.session->checkpoint();
    ++checkpoints_written_;
    checkpoints_written_metric_->add(1);
    auto fresh = std::make_unique<PatientSession>(id, slot.session->config());
    fresh->restore_checkpoint(blob);
    ward_.reattach(*fresh);  // keep the accumulated WardSessionState
    slot.session = std::move(fresh);
    ++checkpoints_restored_;
    checkpoints_restored_metric_->add(1);
  } catch (const CheckpointError& e) {
    // Validation refused the blob; the quarantined object resumes in place
    // (state-equivalent, just not via the restore path). Counted and logged.
    ++checkpoints_rejected_;
    checkpoints_rejected_metric_->add(1);
    ward_.note_fault(id, std::string{"checkpoint rejected, resuming in place: "} +
                             e.what());
  }
}

std::size_t FleetScheduler::step_all(double until_s) {
  // Readmission backoff is measured against this counter, so it advances on
  // every call — including batches that end up empty.
  ++batch_index_;
  // Batch membership decided up front on the caller thread; workers never
  // touch lifecycle state.
  std::vector<Slot*> batch;
  batch.reserve(sessions_.size());
  for (auto& slot : sessions_) {
    if (slot.state == SessionState::kQuarantined) {
      if (batch_index_ < slot.eligible_batch) continue;
      if (slot.session->stream_time_s() >= until_s) continue;
      readmit_from_checkpoint_(slot);
      slot.state = SessionState::kRecovering;
      ward_.set_lifecycle(slot.session->id(), slot.state);
      batch.push_back(&slot);
      continue;
    }
    if (slot.state != SessionState::kAdmitted && slot.state != SessionState::kRunning) {
      continue;
    }
    if (slot.session->stream_time_s() >= until_s) continue;
    batch.push_back(&slot);
  }
  if (batch.empty()) return 0;

  batches_metric_->add(1);
  metrics::TraceSpan span{*batch_wall_};
  const std::size_t frames = config_.frames_per_step;
  std::vector<std::exception_ptr> errors(batch.size());

  if (pool_ == nullptr) {
    // Serial reference execution. Rings hold a full batch (enforced at
    // admit), so nothing blocks with the consumer waiting below.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      try {
        batch[i]->session->step(frames);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  } else {
    // One task per session; the caller drains the ward while the workers
    // produce, which is what un-blocks a full ring under the blocking
    // policy.
    std::atomic<std::size_t> remaining{batch.size()};
    for (std::size_t i = 0; i < batch.size(); ++i) {
      PatientSession* session = batch[i]->session.get();
      std::exception_ptr* error = &errors[i];
      pool_->submit([session, error, frames, &remaining] {
        try {
          session->step(frames);
        } catch (...) {
          *error = std::current_exception();
        }
        remaining.fetch_sub(1, std::memory_order_release);
      });
    }
    while (remaining.load(std::memory_order_acquire) > 0) {
      if (ward_.drain_once() == 0) std::this_thread::yield();
    }
  }

  // Production barrier: every batch task has returned. The gateway pump
  // (set_batch_hook) delivers this batch's wire traffic into the session
  // rings here, before the ward's final drain and escalation below.
  if (batch_hook_) batch_hook_();

  std::size_t stepped = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Slot& slot = *batch[i];
    if (errors[i]) {
      quarantine_(slot, errors[i]);
      continue;
    }
    if (slot.state == SessionState::kRecovering) {
      // Readmission succeeded: the session resumed streaming this batch.
      ward_.note_fault(slot.session->id(),
                       "readmitted after strike " + std::to_string(slot.strikes));
      slot.state = SessionState::kRunning;
      ward_.set_lifecycle(slot.session->id(), slot.state);
      recoveries_metric_->add(1);
    } else if (slot.state == SessionState::kAdmitted) {
      slot.state = SessionState::kRunning;
      ward_.set_lifecycle(slot.session->id(), SessionState::kRunning);
    }
    sync_fault_log_(slot);  // silent degradations (re-routes, bursts) too
    frames_metric_->add(frames);
    ++stepped;
  }
  active_gauge_->set(static_cast<double>(active_sessions()));
  (void)ward_.drain_once();
  // Escalation runs only here, at the batch barrier, where every code and
  // event of the batch has been consumed — mid-batch drains see partial
  // counts and would make notice→urgent timing depend on the thread count.
  ward_.settle();
  return stepped;
}

bool FleetScheduler::recovery_pending(double until_s) const {
  for (const auto& slot : sessions_) {
    if (slot.state == SessionState::kQuarantined &&
        slot.session->stream_time_s() < until_s) {
      return true;
    }
  }
  return false;
}

void FleetScheduler::serialize(CheckpointWriter& out) const {
  out.section("fleet_scheduler");
  out.u64(batch_index_);
  out.u64(checkpoints_written_);
  out.u64(checkpoints_restored_);
  out.u64(checkpoints_rejected_);
  out.size(sessions_.size());
  for (const auto& slot : sessions_) {
    out.u8(static_cast<std::uint8_t>(slot.state));
    out.str(slot.quarantine_reason);
    out.size(slot.strikes);
    out.u64(slot.eligible_batch);
    out.size(slot.fault_log_synced);
    slot.session->serialize(out);
  }
}

void FleetScheduler::restore(CheckpointReader& in) {
  in.section("fleet_scheduler");
  batch_index_ = in.u64();
  checkpoints_written_ = in.u64();
  checkpoints_restored_ = in.u64();
  checkpoints_rejected_ = in.u64();
  if (in.size() != sessions_.size()) {
    throw CheckpointError{"scheduler checkpoint session count mismatch"};
  }
  for (auto& slot : sessions_) {
    const std::uint8_t state = in.u8();
    if (state > static_cast<std::uint8_t>(SessionState::kRetired)) {
      throw CheckpointError{"scheduler checkpoint has unknown session state"};
    }
    slot.state = static_cast<SessionState>(state);
    slot.quarantine_reason = in.str();
    slot.strikes = in.size();
    slot.eligible_batch = in.u64();
    slot.fault_log_synced = in.size();
    slot.session->restore(in);
  }
  active_gauge_->set(static_cast<double>(active_sessions()));
}

void FleetScheduler::run(double duration_s) {
  for (;;) {
    if (step_all(duration_s) > 0) continue;
    // Nothing stepped: done, unless a quarantined session is waiting out
    // its readmission backoff — then keep ticking batches until it gets
    // every retry its budget allows (it either recovers or retires).
    if (!recovery_pending(duration_s)) break;
  }
  (void)ward_.drain_once();
  ward_.settle();
}

}  // namespace tono::fleet
