
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bio/artifacts.cpp" "src/bio/CMakeFiles/tono_bio.dir/artifacts.cpp.o" "gcc" "src/bio/CMakeFiles/tono_bio.dir/artifacts.cpp.o.d"
  "/root/repo/src/bio/beat.cpp" "src/bio/CMakeFiles/tono_bio.dir/beat.cpp.o" "gcc" "src/bio/CMakeFiles/tono_bio.dir/beat.cpp.o.d"
  "/root/repo/src/bio/cuff.cpp" "src/bio/CMakeFiles/tono_bio.dir/cuff.cpp.o" "gcc" "src/bio/CMakeFiles/tono_bio.dir/cuff.cpp.o.d"
  "/root/repo/src/bio/pulse_generator.cpp" "src/bio/CMakeFiles/tono_bio.dir/pulse_generator.cpp.o" "gcc" "src/bio/CMakeFiles/tono_bio.dir/pulse_generator.cpp.o.d"
  "/root/repo/src/bio/scenario.cpp" "src/bio/CMakeFiles/tono_bio.dir/scenario.cpp.o" "gcc" "src/bio/CMakeFiles/tono_bio.dir/scenario.cpp.o.d"
  "/root/repo/src/bio/tissue.cpp" "src/bio/CMakeFiles/tono_bio.dir/tissue.cpp.o" "gcc" "src/bio/CMakeFiles/tono_bio.dir/tissue.cpp.o.d"
  "/root/repo/src/bio/windkessel.cpp" "src/bio/CMakeFiles/tono_bio.dir/windkessel.cpp.o" "gcc" "src/bio/CMakeFiles/tono_bio.dir/windkessel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tono_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
