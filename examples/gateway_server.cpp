// gateway_server — the hospital serving loop with the Fig. 3 USB link made a
// real wire: every session's 12-bit code stream leaves its producer through a
// GatewayMux channel, crosses a Transport (in-process loopback or a real TCP
// socket), and is demultiplexed ward-side back into the session rings at each
// batch barrier (docs/GATEWAY.md).
//
//   live:    gateway_server --sessions 16 --duration 10 --seed 11
//                [--transport loopback|tcp] [--listen 127.0.0.1:0]
//                [--wire-policy block|drop] [--wire-capacity 1048576]
//                [--record DIR] [--dump-codes DIR] [+ the ward_server flags]
//   replay:  gateway_server --replay DIR [--replay-speed 0]
//                [--dump-codes DIR] [+ matching fleet flags]
//
// Determinism contract (asserted by tests/test_gateway.cpp and CI): a
// loopback run writes a hospital snapshot byte-identical to ward_server with
// the same flags — the wire adds latency, never different bytes. A --record
// run captures exactly the frames the ward consumed; --replay feeds them back
// through the gateway (original frame sequence numbers preserved) and the
// delivered code stream is byte-for-byte the recorded one. --replay-speed 0
// is time-compressed (as fast as the host allows); N > 0 paces the replay at
// N× the 1 kS/s hardware rate.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "src/common/checkpoint.hpp"
#include "src/common/cli.hpp"
#include "src/common/metrics.hpp"
#include "src/fleet/hospital_scheduler.hpp"
#include "src/gateway/gateway.hpp"
#include "src/gateway/recorder.hpp"
#include "src/gateway/tcp_transport.hpp"
#include "src/gateway/transport.hpp"
// Shared with ward_server so both binaries admit byte-identical configs.
#include "examples/session_mix.hpp"

namespace {

using namespace tono;
using tono::examples::mix_label;
using tono::examples::parse_fault_plan;
using tono::examples::session_mix;

/// "host:port" with a numeric port in [0, 65535]; no silent clamping.
bool parse_listen(const std::string& spec, std::string* host, int* port,
                  std::string* error) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size()) {
    *error = "--listen: expected host:port, got '" + spec + "'";
    return false;
  }
  *host = spec.substr(0, colon);
  const std::string port_str = spec.substr(colon + 1);
  char* end = nullptr;
  const long p = std::strtol(port_str.c_str(), &end, 10);
  if (end == port_str.c_str() || *end != '\0' || p < 0 || p > 65535) {
    *error = "--listen: port must be 0..65535, got '" + port_str + "'";
    return false;
  }
  *port = static_cast<int>(p);
  return true;
}

/// One gateway stack per shard: the wire, its two ends, and the shard's
/// session ids. Shards share nothing, so each driver thread pumps only its
/// own demux.
struct ShardGateway {
  std::unique_ptr<gateway::LoopbackTransport> loop;
  std::unique_ptr<gateway::TcpTransport> tx;  ///< connect side (mux)
  std::unique_ptr<gateway::TcpTransport> rx;  ///< accepted side (demux)
  std::unique_ptr<gateway::GatewayMux> mux;
  std::unique_ptr<gateway::GatewayDemux> demux;
  std::vector<std::uint32_t> session_ids;
};

/// Per-session little-endian int16 dump of every code the demux delivered,
/// in delivery order — the byte-level artifact CI compares across live,
/// record and replay runs.
class CodeDumper {
 public:
  explicit CodeDumper(std::string dir) : dir_(std::move(dir)) {}

  bool open(std::uint32_t id) {
    auto& out = files_[id];
    out.open(dir_ + "/session_" + std::to_string(id) + ".i16",
             std::ios::binary | std::ios::trunc);
    return out.good();
  }

  void write(std::uint32_t id, std::span<const std::int16_t> codes) {
    auto it = files_.find(id);
    if (it == files_.end()) return;
    for (const std::int16_t code : codes) {
      const auto u = static_cast<std::uint16_t>(code);
      const char b[2] = {static_cast<char>(u & 0xFF), static_cast<char>(u >> 8)};
      it->second.write(b, 2);
    }
  }

  bool flush() {
    bool ok = true;
    for (auto& [id, out] : files_) {
      out.flush();
      ok = ok && out.good();
    }
    return ok;
  }

 private:
  std::string dir_;
  std::map<std::uint32_t, std::ofstream> files_;
};

}  // namespace

int main(int argc, char** argv) {
  ArgParser args{"gateway_server",
                 "serve N patient sessions through the streaming gateway wire"};
  args.add_int("sessions", "number of patient sessions to admit", 16);
  args.add_double("duration", "monitoring stream per session [s]", 10.0);
  args.add_int("seed", "fleet base seed (per-session seeds derive from it)", 11);
  args.add_int("shards", "independent ward shards, each with its own gateway", 1);
  args.add_int("threads",
               "worker threads per shard (0 = hardware/shards, 1 = serial shard)", 0);
  args.add_int("frames-per-step", "output frames per session per batch", 64);
  args.add_int("epoch-batches", "batches per shard between hospital epochs", 16);
  args.add_string("code-policy", "codes-ring backpressure: drop | block", "drop");
  args.add_string("fault-plan",
                  "per-session fault schedule, e.g. contact=1,link=1,element=1", "");
  args.add_int("max-readmits", "readmissions before a quarantined session retires", 3);
  args.add_string("snapshot", "write the ward JSONL snapshot to this file", "");
  args.add_int("snapshot-every",
               "async-snapshot period in epochs (0 = final snapshot only)", 0);
  args.add_string("metrics", "write a JSONL runtime-metrics snapshot to this file", "");
  args.add_flag("verbose", "print per-session rows (always printed for quarantines)");
  args.add_string("transport", "wire implementation: loopback | tcp", "loopback");
  args.add_string("listen", "TCP bind address (tcp transport; port 0 = ephemeral)",
                  "127.0.0.1:0");
  args.add_string("wire-policy",
                  "gateway backpressure on a saturated wire: block | drop", "block");
  args.add_int("wire-capacity", "loopback wire queue capacity in bytes", 1 << 20);
  args.add_string("record", "record every consumed session stream into this directory",
                  "");
  args.add_string("replay", "replay a recorded directory instead of producing live",
                  "");
  args.add_double("replay-speed",
                  "replay pacing multiple of the 1 kS/s hardware rate (0 = max speed)",
                  0.0);
  args.add_string("dump-codes",
                  "write per-session delivered-code dumps (LE int16) into this dir",
                  "");
  if (!args.parse(argc, argv)) {
    std::cerr << (args.help_requested() ? args.help_text() : args.error() + "\n");
    return args.help_requested() ? 0 : 2;
  }

  // Strict range validation, ward_server style: a bad value is a clear exit-2
  // error, never a silently clamped cast.
  const long sessions_raw = args.int_value("sessions");
  const long shards_raw = args.int_value("shards");
  const long threads_raw = args.int_value("threads");
  const long frames_raw = args.int_value("frames-per-step");
  const long epoch_raw = args.int_value("epoch-batches");
  const long readmits_raw = args.int_value("max-readmits");
  const long seed_raw = args.int_value("seed");
  const long snapshot_every_raw = args.int_value("snapshot-every");
  const long wire_capacity_raw = args.int_value("wire-capacity");
  const double duration_flag_s = args.double_value("duration");
  const double replay_speed = args.double_value("replay-speed");
  if (shards_raw < 1) {
    std::cerr << "--shards must be >= 1 (got " << shards_raw << ")\n";
    return 2;
  }
  if (sessions_raw < 0) {
    std::cerr << "--sessions must be >= 0 (got " << sessions_raw << ")\n";
    return 2;
  }
  if (threads_raw < 0) {
    std::cerr << "--threads must be >= 0 (got " << threads_raw << ")\n";
    return 2;
  }
  if (frames_raw < 1) {
    std::cerr << "--frames-per-step must be >= 1 (got " << frames_raw << ")\n";
    return 2;
  }
  if (epoch_raw < 1) {
    std::cerr << "--epoch-batches must be >= 1 (got " << epoch_raw << ")\n";
    return 2;
  }
  if (readmits_raw < 0) {
    std::cerr << "--max-readmits must be >= 0 (got " << readmits_raw << ")\n";
    return 2;
  }
  if (seed_raw < 0) {
    std::cerr << "--seed must be >= 0 (got " << seed_raw << ")\n";
    return 2;
  }
  if (snapshot_every_raw < 0) {
    std::cerr << "--snapshot-every must be >= 0 (got " << snapshot_every_raw << ")\n";
    return 2;
  }
  if (!(duration_flag_s > 0.0)) {
    std::cerr << "--duration must be > 0 (got " << duration_flag_s << ")\n";
    return 2;
  }
  const std::string policy_name = args.string_value("code-policy");
  if (policy_name != "drop" && policy_name != "block") {
    std::cerr << "--code-policy must be 'drop' or 'block'\n";
    return 2;
  }
  const std::string transport_name = args.string_value("transport");
  if (transport_name != "loopback" && transport_name != "tcp") {
    std::cerr << "--transport must be 'loopback' or 'tcp' (got '" << transport_name
              << "')\n";
    return 2;
  }
  std::string listen_host;
  int listen_port = 0;
  {
    std::string listen_error;
    if (!parse_listen(args.string_value("listen"), &listen_host, &listen_port,
                      &listen_error)) {
      std::cerr << listen_error << "\n";
      return 2;
    }
  }
  const std::string wire_policy_name = args.string_value("wire-policy");
  if (wire_policy_name != "drop" && wire_policy_name != "block") {
    std::cerr << "--wire-policy must be 'drop' or 'block'\n";
    return 2;
  }
  if (wire_capacity_raw < 1) {
    std::cerr << "--wire-capacity must be >= 1 (got " << wire_capacity_raw << ")\n";
    return 2;
  }
  if (!(replay_speed >= 0.0)) {
    std::cerr << "--replay-speed must be >= 0 (got " << replay_speed << ")\n";
    return 2;
  }
  const std::string record_dir = args.string_value("record");
  const std::string replay_dir = args.string_value("replay");
  if (!record_dir.empty() && !replay_dir.empty()) {
    std::cerr << "--record and --replay are mutually exclusive\n";
    return 2;
  }
  const bool replay_mode = !replay_dir.empty();
  fleet::FaultPlanConfig fault_plan;
  {
    std::string plan_error;
    if (!parse_fault_plan(args.string_value("fault-plan"), &fault_plan, &plan_error)) {
      std::cerr << plan_error << "\n";
      return 2;
    }
  }

  // ---- Resolve the run parameters -----------------------------------------
  // Live mode takes them from the flags. Replay mode takes them from the
  // recording: the finalize()-written index when present (explicit flags must
  // then match — a replay against the wrong seed would calibrate a different
  // hospital, so a mismatch is exit 2, not a warning), else flags plus a
  // tail-truncating scan of the session files (killed recording).
  std::size_t n_sessions = static_cast<std::size_t>(sessions_raw);
  std::uint64_t base_seed = static_cast<std::uint64_t>(seed_raw);
  std::size_t frames_per_step = static_cast<std::size_t>(frames_raw);
  double duration_s = duration_flag_s;
  std::vector<std::uint32_t> replay_ids;
  std::uint64_t replay_codes_per_session = 0;  ///< floor-aligned ingest cap
  bool replay_torn = false;
  if (replay_mode) {
    replay_ids = gateway::SessionReplayer::list_sessions(replay_dir);
    if (replay_ids.empty()) {
      std::cerr << "no session records found in " << replay_dir << "\n";
      return 1;
    }
    std::optional<gateway::RecordIndex> index;
    try {
      index = gateway::read_record_index(replay_dir);
    } catch (const CheckpointError& e) {
      std::cerr << "corrupt record index in " << replay_dir << ": " << e.what()
                << "\n";
      return 1;
    }
    if (index.has_value()) {
      const auto& meta = index->meta;
      if (args.has("seed") &&
          static_cast<std::uint64_t>(seed_raw) != meta.base_seed) {
        std::cerr << "--seed " << seed_raw << " mismatches the recording (seed "
                  << meta.base_seed << ")\n";
        return 2;
      }
      if (args.has("frames-per-step") &&
          static_cast<std::uint64_t>(frames_raw) != meta.frames_per_step) {
        std::cerr << "--frames-per-step " << frames_raw
                  << " mismatches the recording (" << meta.frames_per_step << ")\n";
        return 2;
      }
      if (args.has("sessions") &&
          static_cast<std::uint64_t>(sessions_raw) != meta.sessions) {
        std::cerr << "--sessions " << sessions_raw << " mismatches the recording ("
                  << meta.sessions << ")\n";
        return 2;
      }
      base_seed = meta.base_seed;
      frames_per_step = static_cast<std::size_t>(meta.frames_per_step);
      n_sessions = static_cast<std::size_t>(meta.sessions);
    } else {
      n_sessions = replay_ids.size();
    }
    if (replay_ids.size() != n_sessions) {
      std::cerr << "recording has " << replay_ids.size() << " session file(s), "
                << "expected " << n_sessions << "\n";
      return 1;
    }
    // The replay horizon is gated by the shortest stream (a killed recording
    // leaves unequal tails), floor-aligned to whole batches so every session
    // crosses the finish line on the same batch.
    std::uint64_t min_codes = UINT64_MAX;
    for (const std::uint32_t id : replay_ids) {
      const auto totals = gateway::SessionReplayer::scan(replay_dir, id);
      min_codes = std::min(min_codes, totals.codes);
      replay_torn = replay_torn || totals.torn;
    }
    replay_codes_per_session =
        (min_codes / frames_per_step) * frames_per_step;
    if (replay_codes_per_session == 0) {
      std::cerr << "recording in " << replay_dir
                << " has no complete batch to replay\n";
      return 1;
    }
    duration_s = static_cast<double>(replay_codes_per_session) / 1000.0;
  }
  fault_plan.horizon_s = std::max(fault_plan.min_onset_s + 0.1, 0.75 * duration_s);

  // ---- Hospital + per-shard gateways --------------------------------------
  fleet::HospitalConfig hospital_config;
  hospital_config.shards = static_cast<std::size_t>(shards_raw);
  hospital_config.threads_per_shard = static_cast<std::size_t>(threads_raw);
  hospital_config.base_seed = base_seed;
  hospital_config.frames_per_step = frames_per_step;
  hospital_config.epoch_batches = static_cast<std::size_t>(epoch_raw);
  hospital_config.max_readmits = static_cast<std::size_t>(readmits_raw);
  hospital_config.snapshot_path = args.string_value("snapshot");
  hospital_config.snapshot_every_epochs =
      static_cast<std::size_t>(snapshot_every_raw);
  fleet::HospitalScheduler hospital{hospital_config};
  const std::size_t n_shards = hospital.shards();

  gateway::GatewayConfig gateway_config;
  gateway_config.wire_policy = wire_policy_name == "drop"
                                   ? BackpressurePolicy::kDropOldest
                                   : BackpressurePolicy::kBlock;
  // A blocking loopback wire has no concurrent consumer between barriers, so
  // (like the admission ring guard) its capacity must cover one whole shard
  // batch or the producers would spin forever.
  const std::size_t sessions_per_shard = (n_sessions + n_shards - 1) / n_shards;
  const std::size_t envelopes_per_session =
      (frames_per_step + core::kMaxSamplesPerFrame - 1) / core::kMaxSamplesPerFrame;
  const std::size_t batch_wire_bytes =
      sessions_per_shard * envelopes_per_session *
      gateway::envelope_wire_bytes(
          core::frame_wire_bytes(std::min(frames_per_step, core::kMaxSamplesPerFrame)));
  if (!replay_mode && transport_name == "loopback" &&
      gateway_config.wire_policy == BackpressurePolicy::kBlock &&
      static_cast<std::size_t>(wire_capacity_raw) < batch_wire_bytes) {
    std::cerr << "--wire-capacity " << wire_capacity_raw
              << " cannot hold one shard batch (" << batch_wire_bytes
              << " B) under --wire-policy block\n";
    return 2;
  }

  std::vector<ShardGateway> gateways(n_shards);
  std::unique_ptr<gateway::TcpListener> listener;
  try {
    if (transport_name == "tcp") {
      listener = std::make_unique<gateway::TcpListener>(
          listen_host, static_cast<std::uint16_t>(listen_port));
      for (auto& g : gateways) {
        // Connect then accept: pairs match in order because the listener
        // backlog queues the pending connection.
        g.tx = gateway::TcpTransport::connect(listen_host, listener->port());
        g.rx = listener->accept();
        g.mux = std::make_unique<gateway::GatewayMux>(*g.tx, gateway_config);
        g.demux = std::make_unique<gateway::GatewayDemux>(*g.rx);
      }
    } else {
      for (auto& g : gateways) {
        g.loop = std::make_unique<gateway::LoopbackTransport>(
            static_cast<std::size_t>(wire_capacity_raw));
        g.mux = std::make_unique<gateway::GatewayMux>(*g.loop, gateway_config);
        g.demux = std::make_unique<gateway::GatewayDemux>(*g.loop);
      }
    }
  } catch (const gateway::TransportError& e) {
    std::cerr << "cannot set up " << transport_name << " transport: " << e.what()
              << "\n";
    return 1;
  }

  std::unique_ptr<gateway::SessionRecorder> recorder;
  if (!record_dir.empty()) {
    try {
      recorder = std::make_unique<gateway::SessionRecorder>(record_dir);
    } catch (const gateway::RecorderError& e) {
      std::cerr << e.what() << "\n";
      return 1;
    }
  }
  const std::string dump_dir = args.string_value("dump-codes");
  std::unique_ptr<CodeDumper> dumper;
  if (!dump_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dump_dir, ec);
    dumper = std::make_unique<CodeDumper>(dump_dir);
  }

  // ---- Admission ----------------------------------------------------------
  for (std::size_t i = 0; i < n_sessions; ++i) {
    fleet::SessionConfig config = session_mix(i);
    config.code_policy = policy_name == "block" ? BackpressurePolicy::kBlock
                                                : BackpressurePolicy::kDropOldest;
    config.fault_plan = fault_plan;
    const std::size_t s = i % n_shards;
    auto& g = gateways[s];
    if (replay_mode) {
      config.external_ingest = true;  // codes arrive only through the wire
    } else {
      // The producer side of the wire: the session hands its batch codes to
      // the shard mux instead of publishing in-process.
      gateway::GatewayMux* mux = g.mux.get();
      config.code_sink = [mux](std::uint32_t id,
                               std::span<const std::int16_t> codes) {
        mux->send(id, codes);
      };
    }
    const std::uint32_t id = hospital.admit(std::move(config), mix_label(i));
    g.session_ids.push_back(id);
    g.mux->open_channel(id);
    g.demux->open_channel(id);
    if (recorder) recorder->open_session(id);
    if (dumper && !dumper->open(id)) {
      std::cerr << "cannot open code dump for session " << id << " in "
                << dump_dir << "\n";
      return 1;
    }
  }

  // ---- Delivery: demux → session rings (and the taps) ---------------------
  std::uint64_t delivery_drops = 0;
  for (std::size_t s = 0; s < n_shards; ++s) {
    auto& g = gateways[s];
    g.demux->on_codes([&hospital, &dumper, &delivery_drops, s](
                          std::uint32_t id, std::span<const std::int16_t> codes) {
      if (dumper) dumper->write(id, codes);
      fleet::PatientSession* session = hospital.shard(s).session(id);
      if (session == nullptr) {
        ++delivery_drops;
        return;
      }
      try {
        session->ingest_codes(codes);
      } catch (const std::exception&) {
        ++delivery_drops;  // e.g. codes in flight for a just-quarantined session
      }
    });
    if (recorder) {
      g.demux->on_envelope([&recorder](std::uint32_t id,
                                       std::span<const std::uint8_t> frame,
                                       std::uint16_t n_codes) {
        recorder->record(id, frame, n_codes);
      });
    }
  }

  // ---- Barrier pumps ------------------------------------------------------
  // Live: every batch's envelopes are on the wire when the production barrier
  // lands (code_sink runs inside step()), so one pump drains them all; TCP
  // additionally waits for the kernel to hand over everything the mux sent.
  // Replay: the hook *is* the producer — it feeds each session one batch of
  // recorded frames (original sequence numbers preserved), pumping as it
  // goes, and paces itself against wall time when --replay-speed > 0.
  struct ReplayState {
    std::vector<std::unique_ptr<gateway::SessionReplayer>> replayers;
    std::vector<std::uint64_t> fed;  ///< codes shipped per session
    std::uint64_t batches{0};
    std::chrono::steady_clock::time_point start;
    bool started{false};
  };
  std::vector<ReplayState> replay_states(n_shards);
  const bool tcp = transport_name == "tcp";
  for (std::size_t s = 0; s < n_shards; ++s) {
    auto& g = gateways[s];
    if (!replay_mode) {
      hospital.shard(s).set_batch_hook([&g, tcp] {
        if (tcp) {
          (void)g.demux->pump_until_bytes(g.mux->bytes_sent());
        } else {
          (void)g.demux->pump();
        }
      });
      continue;
    }
    auto& st = replay_states[s];
    for (const std::uint32_t id : g.session_ids) {
      st.replayers.push_back(
          std::make_unique<gateway::SessionReplayer>(replay_dir, id));
      st.fed.push_back(0);
    }
    const std::uint64_t cap = replay_codes_per_session;
    const std::size_t fps = frames_per_step;
    hospital.shard(s).set_batch_hook([&g, &st, cap, fps, tcp, replay_speed] {
      std::vector<std::uint8_t> frame;
      std::uint16_t n_codes = 0;
      for (std::size_t i = 0; i < st.replayers.size(); ++i) {
        const std::uint64_t left = cap > st.fed[i] ? cap - st.fed[i] : 0;
        std::uint64_t quota = std::min<std::uint64_t>(fps, left);
        while (quota > 0 && st.replayers[i]->next(frame, n_codes)) {
          g.mux->send_encoded(st.replayers[i]->session_id(), frame, n_codes);
          st.fed[i] += n_codes;
          quota -= std::min<std::uint64_t>(quota, n_codes);
          // Pump behind every envelope: the loopback queue never holds more
          // than one, so a blocking wire policy cannot wedge the hook.
          if (!tcp) (void)g.demux->pump();
        }
      }
      if (tcp) (void)g.demux->pump_until_bytes(g.mux->bytes_sent());
      ++st.batches;
      if (replay_speed > 0.0) {
        if (!st.started) {
          st.start = std::chrono::steady_clock::now();
          st.started = true;
        }
        // Batch k ends at stream time (k+1)·fps ms; sleep until that point
        // scaled by the speed multiple.
        const double target_s =
            static_cast<double>(st.batches * fps) / 1000.0 / replay_speed;
        std::this_thread::sleep_for(std::chrono::duration<double>(
            std::max(0.0, target_s - std::chrono::duration<double>(
                                         std::chrono::steady_clock::now() - st.start)
                                         .count())));
      }
    });
  }

  std::cout << "gateway_server: " << n_sessions << " sessions "
            << (replay_mode ? "replayed" : "admitted") << ", " << n_shards
            << " shard(s) x " << hospital.threads_per_shard()
            << " worker thread(s), " << transport_name << " wire, " << duration_s
            << " s per session\n";
  if (tcp) {
    std::cout << "tcp: listening on " << listen_host << ":" << listener->port()
              << ", " << n_shards << " connection(s)\n";
  }
  if (replay_mode && replay_torn) {
    std::cout << "replay: torn record tail detected, truncated to "
              << replay_codes_per_session << " codes per session\n";
  }

  const auto wall_start = std::chrono::steady_clock::now();
  hospital.run(duration_s);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();

  // ---- Epilogue: ward report (ward_server format), wire report, taps ------
  const fleet::WardSnapshot ward = hospital.snapshot();
  std::size_t quarantined = 0;
  for (const auto& s : ward.sessions) {
    const bool parked = s.lifecycle == fleet::SessionState::kQuarantined ||
                        s.lifecycle == fleet::SessionState::kRetired;
    if (parked) ++quarantined;
    if (args.flag("verbose") || parked) {
      std::cout << "  [" << s.id << "] " << s.label << " (" << to_string(s.lifecycle)
                << "): " << s.codes << " codes, " << s.beats << " beats, BP "
                << s.last_systolic_mmhg << "/" << s.last_diastolic_mmhg << " mmHg, SQI "
                << s.last_sqi << ", alarms " << s.alarms_active << ", drops "
                << s.code_drops + s.event_drops
                << (s.note.empty() ? "" : " — " + s.note) << "\n";
    }
  }
  std::cout << "ward: " << ward.codes_consumed << " codes, "
            << ward.events_consumed << " events consumed; alarms active "
            << ward.alarms_active << " (queue " << ward.alarms_total
            << ", escalations " << ward.escalations << "); drops "
            << ward.drops << " (events " << ward.event_drops
            << "); quarantined " << quarantined << "\n";

  std::uint64_t frames_muxed = 0, codes_sent = 0, bytes_sent = 0;
  std::uint64_t envelopes_dropped = 0, codes_dropped = 0, blocks = 0;
  std::uint64_t crc_errors = 0, resync_bytes = 0, lost = 0;
  for (const auto& g : gateways) {
    frames_muxed += g.mux->frames_muxed();
    codes_sent += g.mux->codes_sent();
    bytes_sent += g.mux->bytes_sent();
    envelopes_dropped += g.mux->envelopes_dropped();
    codes_dropped += g.mux->codes_dropped();
    blocks += g.mux->backpressure_blocks();
    crc_errors += g.demux->crc_errors();
    resync_bytes += g.demux->resync_bytes();
    for (const std::uint32_t id : g.session_ids) {
      lost += g.demux->channel_stats(id).lost_envelopes;
    }
  }
  std::cout << "wire: " << frames_muxed << " frames (" << codes_sent
            << " codes, " << bytes_sent << " B) muxed; dropped "
            << envelopes_dropped << " envelope(s) / " << codes_dropped
            << " code(s), " << blocks << " block stall(s); demux "
            << crc_errors << " CRC error(s), " << resync_bytes
            << " resync byte(s), " << lost << " lost envelope(s), "
            << delivery_drops << " delivery drop(s)\n";
  if (replay_mode) {
    const double speedup = wall_s > 0.0 ? duration_s / wall_s : 0.0;
    metrics::Registry::global()
        .gauge(metrics::names::kGatewayReplaySpeedup)
        .set(speedup);
    std::cout << "replay: " << duration_s << " s of stream in " << wall_s
              << " s wall (" << speedup << "x)\n";
  }

  if (recorder) {
    gateway::RecordMeta meta;
    meta.base_seed = base_seed;
    meta.sessions = n_sessions;
    meta.frames_per_step = frames_per_step;
    meta.duration_s = duration_s;
    if (!recorder->finalize(meta)) {
      std::cerr << "cannot finalize recording in " << record_dir << "\n";
      return 1;
    }
    std::cout << "recorded " << recorder->frames_recorded() << " frame(s), "
              << recorder->bytes_written() << " B to " << record_dir << "\n";
  }
  if (dumper && !dumper->flush()) {
    std::cerr << "cannot write code dumps to " << dump_dir << "\n";
    return 1;
  }

  const std::string snapshot = args.string_value("snapshot");
  if (!snapshot.empty()) {
    if (hospital.snapshots_written() == 0) {
      std::cerr << "cannot write snapshot to " << snapshot << "\n";
      return 1;
    }
    std::cout << "wrote ward snapshot to " << snapshot;
    if (snapshot_every_raw > 0) {
      std::cout << " (" << hospital.snapshots_written() << " written, "
                << hospital.snapshots_skipped() << " superseded)";
    }
    std::cout << "\n";
  }
  const std::string metrics_path = args.string_value("metrics");
  if (!metrics_path.empty()) {
    metrics::register_standard_instruments();
    if (!metrics::Registry::global().write_jsonl_file(metrics_path)) {
      std::cerr << "cannot write metrics to " << metrics_path << "\n";
      return 1;
    }
    std::cout << "wrote metrics snapshot to " << metrics_path << "\n";
  }
  if (ward.event_drops != 0) {
    std::cerr << "ERROR: " << ward.event_drops << " beat/alarm events dropped\n";
    return 1;
  }
  return 0;
}
