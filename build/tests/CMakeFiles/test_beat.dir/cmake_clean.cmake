file(REMOVE_RECURSE
  "CMakeFiles/test_beat.dir/test_beat.cpp.o"
  "CMakeFiles/test_beat.dir/test_beat.cpp.o.d"
  "test_beat"
  "test_beat.pdb"
  "test_beat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_beat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
