// Tests for the oscillometric cuff simulator (baseline device).
#include "src/bio/cuff.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tono::bio {
namespace {

TEST(Cuff, ReadingCloseToTruth) {
  OscillometricCuff cuff{CuffConfig{}};
  const auto r = cuff.measure(120.0, 80.0, 72.0);
  ASSERT_TRUE(r.valid);
  EXPECT_NEAR(r.systolic_mmhg, 120.0, 5.0);
  EXPECT_NEAR(r.diastolic_mmhg, 80.0, 5.0);
  EXPECT_NEAR(r.map_mmhg, 80.0 + 40.0 / 3.0, 6.0);
}

TEST(Cuff, LowBiasAcrossSeeds) {
  double sys_bias = 0.0;
  double dia_bias = 0.0;
  const int n = 30;
  for (int i = 0; i < n; ++i) {
    CuffConfig c;
    c.seed = static_cast<std::uint64_t>(100 + i);
    OscillometricCuff cuff{c};
    const auto r = cuff.measure(120.0, 80.0, 72.0);
    ASSERT_TRUE(r.valid);
    sys_bias += r.systolic_mmhg - 120.0;
    dia_bias += r.diastolic_mmhg - 80.0;
  }
  EXPECT_LT(std::abs(sys_bias / n), 2.0);
  EXPECT_LT(std::abs(dia_bias / n), 2.0);
}

TEST(Cuff, OrderingPreserved) {
  OscillometricCuff cuff{CuffConfig{}};
  const auto r = cuff.measure(140.0, 90.0, 80.0);
  ASSERT_TRUE(r.valid);
  EXPECT_GT(r.systolic_mmhg, r.map_mmhg);
  EXPECT_GT(r.map_mmhg, r.diastolic_mmhg);
}

TEST(Cuff, FailsOutsideDeflationWindow) {
  OscillometricCuff cuff{CuffConfig{}};
  EXPECT_FALSE(cuff.measure(200.0, 120.0, 72.0).valid);  // sys above start
  EXPECT_FALSE(cuff.measure(70.0, 40.0, 72.0).valid);    // dia below end
}

TEST(Cuff, FailsOnDegenerateInputs) {
  OscillometricCuff cuff{CuffConfig{}};
  EXPECT_FALSE(cuff.measure(80.0, 80.0, 72.0).valid);
  EXPECT_FALSE(cuff.measure(120.0, 80.0, 0.0).valid);
}

TEST(Cuff, MeasurementTakesDeflationTime) {
  OscillometricCuff cuff{CuffConfig{}};
  const auto r = cuff.measure(120.0, 80.0, 72.0);
  // 140 mmHg at 3 mmHg/s ≈ 47 s — the §1 argument for a continuous sensor.
  EXPECT_NEAR(r.duration_s, (180.0 - 40.0) / 3.0, 1e-9);
}

TEST(Cuff, MaxMeasurementRateLimited) {
  OscillometricCuff cuff{CuffConfig{}};
  const double per_hour = cuff.max_measurements_per_hour();
  EXPECT_LT(per_hour, 60.0);  // far below beat-to-beat
  EXPECT_GT(per_hour, 10.0);
}

TEST(Cuff, RejectsBadConfig) {
  CuffConfig bad;
  bad.deflation_rate_mmhg_per_s = 0.0;
  EXPECT_THROW((OscillometricCuff{bad}), std::invalid_argument);
  CuffConfig bad2;
  bad2.start_pressure_mmhg = 30.0;
  EXPECT_THROW((OscillometricCuff{bad2}), std::invalid_argument);
  CuffConfig bad3;
  bad3.systolic_ratio = 1.5;
  EXPECT_THROW((OscillometricCuff{bad3}), std::invalid_argument);
}

struct CuffCase {
  double sys;
  double dia;
  double hr;
};

class CuffSweepTest : public ::testing::TestWithParam<CuffCase> {};

TEST_P(CuffSweepTest, AccurateAcrossClinicalRange) {
  // Average several repeated measurements (different noise draws).
  double sys_acc = 0.0;
  double dia_acc = 0.0;
  const int reps = 10;
  for (int i = 0; i < reps; ++i) {
    CuffConfig c;
    c.seed = static_cast<std::uint64_t>(7000 + i);
    OscillometricCuff cuff{c};
    const auto r = cuff.measure(GetParam().sys, GetParam().dia, GetParam().hr);
    ASSERT_TRUE(r.valid);
    sys_acc += r.systolic_mmhg;
    dia_acc += r.diastolic_mmhg;
  }
  EXPECT_NEAR(sys_acc / reps, GetParam().sys, 4.0);
  EXPECT_NEAR(dia_acc / reps, GetParam().dia, 4.0);
}

INSTANTIATE_TEST_SUITE_P(ClinicalRange, CuffSweepTest,
                         ::testing::Values(CuffCase{110.0, 70.0, 60.0},
                                           CuffCase{120.0, 80.0, 72.0},
                                           CuffCase{135.0, 85.0, 85.0},
                                           CuffCase{150.0, 95.0, 95.0},
                                           CuffCase{165.0, 105.0, 110.0}));

}  // namespace
}  // namespace tono::bio
