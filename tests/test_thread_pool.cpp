// Tests for the ThreadPool hardening (src/common/thread_pool.{hpp,cpp}):
// exception propagation to the submitter and the queue-depth gauge. The
// basic execute/wait behavior is exercised indirectly everywhere SweepRunner
// and FleetScheduler run; here we pin the contracts directly. Runs under the
// CI TSan job.
#include "src/common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>

#include "src/common/metrics.hpp"

namespace {

using tono::ThreadPool;

TEST(ThreadPool, ExecutesEveryTask) {
  ThreadPool pool{4};
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleRethrowsFirstTaskException) {
  ThreadPool pool{2};
  pool.submit([] { throw std::runtime_error{"task failed"}; });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The rethrow consumed it: the pool is clean again.
  EXPECT_EQ(pool.first_exception(), nullptr);
  pool.submit([] {});
  EXPECT_NO_THROW(pool.wait_idle());
}

TEST(ThreadPool, OnlyFirstOfManyExceptionsPropagates) {
  ThreadPool pool{2};
  std::atomic<int> executed{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&executed] {
      executed.fetch_add(1, std::memory_order_relaxed);
      throw std::runtime_error{"boom"};
    });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // Every task still ran — a throwing task never takes the queue down.
  EXPECT_EQ(executed.load(), 20);
  EXPECT_NO_THROW(pool.wait_idle());
}

TEST(ThreadPool, FirstExceptionIsNonDestructivePeek) {
  ThreadPool pool{1};
  pool.submit([] { throw std::logic_error{"peekable"}; });
  // Busy-wait until the worker has stored it (submit returns immediately).
  while (pool.first_exception() == nullptr) std::this_thread::yield();
  EXPECT_NE(pool.first_exception(), nullptr);
  EXPECT_NE(pool.first_exception(), nullptr) << "peek must not consume";
  EXPECT_THROW(pool.wait_idle(), std::logic_error);
}

TEST(ThreadPool, QueueDepthGaugeReturnsToZeroWhenIdle) {
  auto& gauge = tono::metrics::Registry::global().gauge(
      tono::metrics::names::kPoolQueueDepth);
  ThreadPool pool{2};
  for (int i = 0; i < 50; ++i) {
    pool.submit([] {});
  }
  pool.wait_idle();
  EXPECT_EQ(gauge.value(), 0.0);
}

}  // namespace
