file(REMOVE_RECURSE
  "../bench/bench_ablation_cfb_osr"
  "../bench/bench_ablation_cfb_osr.pdb"
  "CMakeFiles/bench_ablation_cfb_osr.dir/bench_ablation_cfb_osr.cpp.o"
  "CMakeFiles/bench_ablation_cfb_osr.dir/bench_ablation_cfb_osr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cfb_osr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
