# Empty compiler generated dependencies file for test_pulse_generator.
# This may be replaced when dependencies are built.
