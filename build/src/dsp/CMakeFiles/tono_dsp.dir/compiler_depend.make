# Empty compiler generated dependencies file for tono_dsp.
# This may be replaced when dependencies are built.
