// Tests for the seeded patient-population generator (docs/VALIDATION.md).
#include "src/bio/population.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "src/bio/pulse_generator.hpp"
#include "src/core/sweep_runner.hpp"

namespace tono::bio {
namespace {

bool same_member(const ScenarioConfig& a, const ScenarioConfig& b) {
  return a.member_index == b.member_index && a.seed == b.seed &&
         a.family == b.family && a.cohort == b.cohort &&
         a.age_years == b.age_years && a.stiffness == b.stiffness &&
         a.pulse.seed == b.pulse.seed &&
         a.pulse.systolic_mmhg == b.pulse.systolic_mmhg &&
         a.pulse.diastolic_mmhg == b.pulse.diastolic_mmhg &&
         a.pulse.heart_rate_bpm == b.pulse.heart_rate_bpm &&
         a.pulse.hrv_jitter == b.pulse.hrv_jitter &&
         a.pulse.af_irregularity == b.pulse.af_irregularity &&
         a.artifacts.seed == b.artifacts.seed;
}

TEST(Population, MemberIsPureFunctionOfSeedAndIndex) {
  const PopulationGenerator gen{{}};
  // Same index twice, and out-of-order access, give identical members.
  const auto a = gen.member(17);
  const auto b = gen.member(3);
  const auto a2 = gen.member(17);
  EXPECT_TRUE(same_member(a, a2));
  EXPECT_FALSE(same_member(a, b));

  // A second generator with the same config reproduces the same population.
  const PopulationGenerator gen2{{}};
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_TRUE(same_member(gen.member(i), gen2.member(i))) << "member " << i;
  }
}

TEST(Population, DifferentSeedsDecorrelate) {
  PopulationConfig a_cfg;
  PopulationConfig b_cfg;
  b_cfg.seed = a_cfg.seed + 1;
  const PopulationGenerator a{a_cfg};
  const PopulationGenerator b{b_cfg};
  std::size_t same = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    if (same_member(a.member(i), b.member(i))) ++same;
  }
  EXPECT_EQ(same, 0u);
}

TEST(Population, MembersAreValidAndInRange) {
  PopulationConfig cfg;
  cfg.enable_artifacts = true;
  const PopulationGenerator gen{cfg};
  for (std::size_t i = 0; i < 1000; ++i) {
    const auto m = gen.member(i);
    EXPECT_GE(m.age_years, cfg.age_min_years);
    EXPECT_LE(m.age_years, cfg.age_max_years);
    EXPECT_GT(m.stiffness, 0.0);
    EXPECT_LT(m.stiffness, 1.0);
    EXPECT_GT(m.pulse.systolic_mmhg, m.pulse.diastolic_mmhg + 5.0);
    EXPECT_GE(m.pulse.diastolic_mmhg, 40.0);
    EXPECT_LE(m.pulse.systolic_mmhg, 200.0);
    EXPECT_GE(m.pulse.heart_rate_bpm, 35.0);
    EXPECT_LE(m.pulse.heart_rate_bpm, 245.0);
    EXPECT_NE(m.seed, 0u);
    EXPECT_NE(m.pulse.seed, 0u);
    EXPECT_FALSE(m.cohort.empty());
    EXPECT_TRUE(m.enable_artifacts);
  }
}

TEST(Population, EveryFamilyProfileProducesValidTargetsAtAllTimes) {
  const PopulationGenerator gen{{}};
  for (std::size_t i = 0; i < 1000; ++i) {
    const auto m = gen.member(i);
    const auto profile = m.make_profile();
    ASSERT_NE(profile, nullptr);
    // Dense sweep incl. far outside the keyframe range: targets must always
    // be physiologically ordered (the satellite-1 invariant).
    const double t_max = profile->t_max();
    for (double t = -30.0; t <= t_max + 60.0; t += t_max / 97.0 + 0.01) {
      const auto kf = profile->at(t);
      ASSERT_GE(kf.systolic_mmhg,
                kf.diastolic_mmhg + ScenarioProfile::kMinPulsePressureMmhg - 1e-9)
          << profile->name() << " member " << i << " t=" << t;
      ASSERT_GT(kf.heart_rate_bpm, 20.0);
      ASSERT_LE(kf.heart_rate_bpm, 250.0);
      ASSERT_GT(kf.diastolic_mmhg, 25.0);
      ASSERT_LT(kf.systolic_mmhg, 260.0);
    }
  }
}

TEST(Population, AllScenarioFamiliesAppear) {
  const PopulationGenerator gen{{}};
  std::set<ScenarioFamily> seen;
  for (const auto& m : gen.generate(256)) seen.insert(m.family);
  EXPECT_EQ(seen.size(), kScenarioFamilyCount);
}

TEST(Population, CohortsTrackAge) {
  const PopulationGenerator gen{{}};
  for (std::size_t i = 0; i < 200; ++i) {
    const auto m = gen.member(i);
    if (m.age_years < 40.0) EXPECT_EQ(m.cohort, "age18-39");
    if (m.age_years >= 75.0) EXPECT_EQ(m.cohort, "age75plus");
  }
}

TEST(Population, StiffnessRaisesPulsePressureOnAverage) {
  const PopulationGenerator gen{{}};
  double stiff_pp = 0.0, soft_pp = 0.0;
  std::size_t stiff_n = 0, soft_n = 0;
  for (const auto& m : gen.generate(500)) {
    const double pp = m.pulse.systolic_mmhg - m.pulse.diastolic_mmhg;
    if (m.stiffness > 0.6) {
      stiff_pp += pp;
      ++stiff_n;
    } else if (m.stiffness < 0.3) {
      soft_pp += pp;
      ++soft_n;
    }
  }
  ASSERT_GT(stiff_n, 10u);
  ASSERT_GT(soft_n, 10u);
  EXPECT_GT(stiff_pp / stiff_n, soft_pp / soft_n + 5.0);
}

TEST(Population, GenerateMatchesMemberAndIsThreadInvariant) {
  const PopulationGenerator gen{{}};
  const auto serial = gen.generate(64);
  ASSERT_EQ(serial.size(), 64u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(same_member(serial[i], gen.member(i)));
  }

  // member() is const and pure, so a SweepRunner fan-out at any thread count
  // reproduces the serial population bit-for-bit.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    core::SweepConfig sc;
    sc.threads = threads;
    core::SweepRunner runner{sc};
    const auto members =
        runner.run(serial.size(), [&](std::size_t i) { return gen.member(i); });
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_TRUE(same_member(serial[i], members[i]))
          << "threads=" << threads << " member " << i;
    }
  }
}

TEST(Population, FamilyWeightsRespected) {
  PopulationConfig cfg;
  cfg.weight_rest = 1.0;
  cfg.weight_exercise = 0.0;
  cfg.weight_hypotensive = 0.0;
  cfg.weight_arrhythmia = 0.0;
  cfg.weight_cuff_drift = 0.0;
  cfg.weight_sensor_aging = 0.0;
  const PopulationGenerator gen{cfg};
  for (const auto& m : gen.generate(100)) {
    EXPECT_EQ(m.family, ScenarioFamily::kRest);
  }

  // All-zero weights degrade to the rest family, not an error.
  cfg.weight_rest = 0.0;
  const PopulationGenerator zero{cfg};
  for (const auto& m : zero.generate(20)) {
    EXPECT_EQ(m.family, ScenarioFamily::kRest);
  }
}

TEST(Population, RejectsBadConfig) {
  PopulationConfig bad_age;
  bad_age.age_min_years = 80.0;
  bad_age.age_max_years = 30.0;
  EXPECT_THROW((PopulationGenerator{bad_age}), std::invalid_argument);

  PopulationConfig bad_duration;
  bad_duration.scenario_duration_s = 0.0;
  EXPECT_THROW((PopulationGenerator{bad_duration}), std::invalid_argument);

  PopulationConfig negative_weight;
  negative_weight.weight_hypotensive = -0.5;
  EXPECT_THROW((PopulationGenerator{negative_weight}), std::invalid_argument);
}

TEST(Population, ProfilesRunnableOnPulseGenerator) {
  // Every family's profile can actually drive a generator: apply() at a
  // coarse cadence while sampling never throws and never produces
  // non-finite pressure.
  for (std::size_t i = 0; i < kScenarioFamilyCount; ++i) {
    PopulationConfig cfg;
    double* weights[] = {&cfg.weight_rest,       &cfg.weight_exercise,
                         &cfg.weight_hypotensive, &cfg.weight_arrhythmia,
                         &cfg.weight_cuff_drift,  &cfg.weight_sensor_aging};
    for (double* w : weights) *w = 0.0;
    *weights[i] = 1.0;
    cfg.scenario_duration_s = 20.0;
    const PopulationGenerator only{cfg};
    const auto m = only.member(0);
    const auto profile = m.make_profile();
    ArterialPulseGenerator pulse{m.pulse};
    for (int k = 0; k < 20 * 50; ++k) {
      const double t = k / 50.0;
      if (k % 10 == 0) profile->apply(pulse, t);
      const double p = pulse.sample(1.0 / 50.0);
      ASSERT_TRUE(std::isfinite(p)) << to_string(m.family) << " t=" << t;
      ASSERT_GT(p, 0.0);
      ASSERT_LT(p, 400.0);
    }
  }
}

}  // namespace
}  // namespace tono::bio
