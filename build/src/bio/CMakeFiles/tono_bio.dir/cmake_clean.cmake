file(REMOVE_RECURSE
  "CMakeFiles/tono_bio.dir/artifacts.cpp.o"
  "CMakeFiles/tono_bio.dir/artifacts.cpp.o.d"
  "CMakeFiles/tono_bio.dir/beat.cpp.o"
  "CMakeFiles/tono_bio.dir/beat.cpp.o.d"
  "CMakeFiles/tono_bio.dir/cuff.cpp.o"
  "CMakeFiles/tono_bio.dir/cuff.cpp.o.d"
  "CMakeFiles/tono_bio.dir/pulse_generator.cpp.o"
  "CMakeFiles/tono_bio.dir/pulse_generator.cpp.o.d"
  "CMakeFiles/tono_bio.dir/scenario.cpp.o"
  "CMakeFiles/tono_bio.dir/scenario.cpp.o.d"
  "CMakeFiles/tono_bio.dir/tissue.cpp.o"
  "CMakeFiles/tono_bio.dir/tissue.cpp.o.d"
  "CMakeFiles/tono_bio.dir/windkessel.cpp.o"
  "CMakeFiles/tono_bio.dir/windkessel.cpp.o.d"
  "libtono_bio.a"
  "libtono_bio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tono_bio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
