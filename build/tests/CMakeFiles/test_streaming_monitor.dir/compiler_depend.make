# Empty compiler generated dependencies file for test_streaming_monitor.
# This may be replaced when dependencies are built.
