#include "src/common/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace tono {

ThreadPool::ThreadPool(std::size_t thread_count) {
  auto& reg = metrics::Registry::global();
  tasks_submitted_ = &reg.counter(metrics::names::kPoolTasksSubmitted);
  tasks_executed_ = &reg.counter(metrics::names::kPoolTasksExecuted);
  peak_queue_depth_ = &reg.gauge(metrics::names::kPoolPeakQueueDepth);
  queue_depth_ = &reg.gauge(metrics::names::kPoolQueueDepth);
  if (thread_count == 0) {
    thread_count = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  }
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { worker_loop_(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock{mutex_};
    stop_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock{mutex_};
    queue_.push_back(std::move(task));
    peak_queue_depth_->record_max(static_cast<double>(queue_.size()));
    queue_depth_->set(static_cast<double>(queue_.size()));
  }
  tasks_submitted_->add(1);
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::exception_ptr pending;
  {
    std::unique_lock lock{mutex_};
    idle_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
    pending = std::exchange(first_exception_, nullptr);
  }
  if (pending) std::rethrow_exception(pending);
}

std::exception_ptr ThreadPool::first_exception() const {
  std::lock_guard lock{mutex_};
  return first_exception_;
}

void ThreadPool::worker_loop_() {
  std::unique_lock lock{mutex_};
  for (;;) {
    work_available_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    // Drain remaining work even when stopping, so the destructor never
    // abandons queued tasks.
    if (queue_.empty()) return;
    auto task = std::move(queue_.front());
    queue_.pop_front();
    queue_depth_->set(static_cast<double>(queue_.size()));
    ++running_;
    lock.unlock();
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    tasks_executed_->add(1);
    lock.lock();
    if (error && !first_exception_) first_exception_ = error;
    --running_;
    if (queue_.empty() && running_ == 0) idle_.notify_all();
  }
}

}  // namespace tono
