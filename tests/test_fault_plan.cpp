// Tests for the fleet fault-plan engine: seeded schedule generation, the
// library-level link fault injector (the decoder never yields a wrong
// sample), runtime element-fault injection with graceful mux re-routing,
// and the session-level degradations. The FaultPlan suite runs under the
// CI TSan job alongside Fleet/Ward.
#include "src/fleet/fault_plan.hpp"

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/sensor_array.hpp"
#include "src/core/telemetry.hpp"
#include "src/fleet/patient_session.hpp"

namespace {

using namespace tono;
using fleet::FaultEvent;
using fleet::FaultKind;
using fleet::FaultPlan;
using fleet::FaultPlanConfig;

FaultPlanConfig mixed_config() {
  FaultPlanConfig config;
  config.contact_loss_events = 2;
  config.link_bursts = 3;
  config.element_faults = 4;
  config.min_onset_s = 0.5;
  config.horizon_s = 4.0;
  return config;
}

TEST(FaultPlan, GenerationIsDeterministic) {
  const FaultPlan a{mixed_config(), 42, 2, 2};
  const FaultPlan b{mixed_config(), 42, 2, 2};
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].at_s, b.events()[i].at_s);
    EXPECT_EQ(a.events()[i].row, b.events()[i].row);
    EXPECT_EQ(a.events()[i].col, b.events()[i].col);
    EXPECT_EQ(a.events()[i].throw_count, b.events()[i].throw_count);
  }
  const FaultPlan c{mixed_config(), 43, 2, 2};
  bool differs = false;
  for (std::size_t i = 0; i < c.events().size(); ++i) {
    differs |= c.events()[i].at_s != a.events()[i].at_s;
  }
  EXPECT_TRUE(differs) << "different seed produced the identical schedule";
}

TEST(FaultPlan, GeneratedEventsMatchConfigCountsAndRanges) {
  const auto config = mixed_config();
  const FaultPlan plan{config, 7, 2, 2};
  ASSERT_EQ(plan.events().size(), 9u);
  EXPECT_TRUE(plan.has_link_bursts());
  std::map<FaultKind, std::size_t> counts;
  double last_onset = 0.0;
  for (const auto& e : plan.events()) {
    ++counts[e.kind];
    EXPECT_GE(e.at_s, config.min_onset_s);
    EXPECT_LT(e.at_s, config.horizon_s);
    EXPECT_GE(e.at_s, last_onset) << "events must be sorted by onset";
    last_onset = e.at_s;
    if (e.kind == FaultKind::kElementFault) {
      EXPECT_LT(e.row, 2u);
      EXPECT_LT(e.col, 2u);
      EXPECT_EQ(e.throw_count, 0u) << "element faults degrade, never throw";
    }
    if (e.kind == FaultKind::kLinkBurst) {
      EXPECT_EQ(e.throw_count, 0u);
      EXPECT_EQ(e.duration_s, config.link_burst_duration_s);
    }
    if (e.kind == FaultKind::kContactLoss) {
      EXPECT_EQ(e.throw_count, 1u) << "recoverable: throws exactly once";
    }
  }
  EXPECT_EQ(counts[FaultKind::kContactLoss], 2u);
  EXPECT_EQ(counts[FaultKind::kLinkBurst], 3u);
  EXPECT_EQ(counts[FaultKind::kElementFault], 4u);
}

TEST(FaultPlan, UnrecoverableProbabilityOneMarksEveryContactLoss) {
  auto config = mixed_config();
  config.unrecoverable_prob = 1.0;
  const FaultPlan plan{config, 7, 2, 2};
  for (const auto& e : plan.events()) {
    if (e.kind != FaultKind::kContactLoss) continue;
    EXPECT_EQ(e.throw_count, fleet::kUnrecoverableThrows);
  }
}

TEST(FaultPlan, RejectsBadConfiguration) {
  FaultPlanConfig bad_window;
  bad_window.contact_loss_events = 1;
  bad_window.min_onset_s = 2.0;
  bad_window.horizon_s = 1.0;
  EXPECT_THROW((FaultPlan{bad_window, 1, 2, 2}), std::invalid_argument);

  FaultPlanConfig no_array;
  no_array.element_faults = 1;
  EXPECT_THROW((FaultPlan{no_array, 1, 0, 0}), std::invalid_argument);
}

TEST(FaultPlan, EmptyConfigIsEmptyPlan) {
  EXPECT_TRUE(FaultPlanConfig{}.empty());
  const FaultPlan plan{FaultPlanConfig{}, 1, 2, 2};
  EXPECT_TRUE(plan.empty());
  EXPECT_FALSE(plan.has_link_bursts());
}

TEST(FaultPlan, DescribeIsStableAcrossKinds) {
  FaultEvent contact{.kind = FaultKind::kContactLoss, .at_s = 1.25, .duration_s = 0.4};
  EXPECT_EQ(FaultPlan::describe(contact), "contact loss at 1.250 s for 0.400 s");
  contact.throw_count = fleet::kUnrecoverableThrows;
  EXPECT_EQ(FaultPlan::describe(contact),
            "contact loss at 1.250 s for 0.400 s (unrecoverable)");
  const FaultEvent burst{.kind = FaultKind::kLinkBurst, .at_s = 0.5, .duration_s = 0.4};
  EXPECT_EQ(FaultPlan::describe(burst), "link corruption burst at 0.500 s for 0.400 s");
  const FaultEvent element{.kind = FaultKind::kElementFault,
                           .at_s = 2.0,
                           .row = 1,
                           .col = 0,
                           .element_fault = core::ElementFault::kStuckDown};
  EXPECT_EQ(FaultPlan::describe(element), "element (1,0) stuck-down at 2.000 s");
}

TEST(FaultPlan, AddKeepsEventsSorted) {
  FaultPlan plan;
  plan.add(FaultEvent{.kind = FaultKind::kContactLoss, .at_s = 2.0});
  plan.add(FaultEvent{.kind = FaultKind::kLinkBurst, .at_s = 0.5});
  ASSERT_EQ(plan.events().size(), 2u);
  EXPECT_EQ(plan.events()[0].kind, FaultKind::kLinkBurst);
  EXPECT_EQ(plan.events()[1].kind, FaultKind::kContactLoss);
}

// --- LinkFaultInjector: deterministic corruption, lossy-but-never-wrong ---

std::vector<std::int16_t> frame_codes(std::size_t frame, std::size_t n) {
  std::vector<std::int16_t> codes;
  for (std::size_t i = 0; i < n; ++i) {
    codes.push_back(static_cast<std::int16_t>(
        static_cast<int>((frame * 131 + i * 37) % 4000) - 2000));
  }
  return codes;
}

TEST(LinkFaultInjector, RejectsInvalidProbabilities) {
  core::LinkFaultConfig negative;
  negative.drop_prob = -0.1;
  EXPECT_THROW((core::LinkFaultInjector{negative, 1}), std::invalid_argument);
  core::LinkFaultConfig oversum;
  oversum.drop_prob = 0.6;
  oversum.bit_flip_prob = 0.6;
  EXPECT_THROW((core::LinkFaultInjector{oversum, 1}), std::invalid_argument);
}

TEST(LinkFaultInjector, CorruptionIsSeedDeterministic) {
  core::LinkFaultInjector a{core::LinkFaultConfig{}, 99};
  core::LinkFaultInjector b{core::LinkFaultConfig{}, 99};
  core::FrameEncoder encoder_a, encoder_b;
  for (std::size_t f = 0; f < 64; ++f) {
    auto wire_a = encoder_a.encode(frame_codes(f, 40));
    auto wire_b = encoder_b.encode(frame_codes(f, 40));
    (void)a.corrupt(wire_a);
    (void)b.corrupt(wire_b);
    EXPECT_EQ(wire_a, wire_b) << "frame " << f;
  }
  EXPECT_EQ(a.frames_corrupted(), b.frames_corrupted());
  EXPECT_GT(a.frames_corrupted(), 0u);
}

TEST(LinkFaultInjector, DecoderNeverYieldsAWrongSample) {
  // The robustness contract: whatever the injector does to the wire, every
  // frame the decoder accepts is byte-exact — corruption becomes counted
  // losses (CRC errors, resyncs, sequence gaps), never wrong samples.
  core::LinkFaultInjector injector{core::LinkFaultConfig{}, 7};
  core::FrameEncoder encoder;
  core::FrameDecoder decoder;
  std::map<std::uint16_t, std::vector<std::int16_t>> sent;
  for (std::size_t f = 0; f < 200; ++f) {
    const auto codes = frame_codes(f, 40);
    sent[encoder.next_sequence()] = codes;
    auto wire = encoder.encode(codes);
    (void)injector.corrupt(wire);
    for (const auto& frame : decoder.push(wire)) {
      ASSERT_TRUE(sent.count(frame.sequence)) << "decoder invented a sequence";
      EXPECT_EQ(frame.samples, sent[frame.sequence]);
    }
  }
  const auto& stats = decoder.stats();
  EXPECT_GT(stats.frames_ok, 0u) << "nothing survived the link";
  EXPECT_LT(stats.frames_ok, 200u) << "injector corrupted nothing";
  EXPECT_GT(stats.crc_errors + stats.resyncs + stats.lost_frames, 0u);
}

// --- Runtime element faults: array level, then the session's re-route ----

TEST(ElementFaultInjection, MarksElementUnhealthyAndCounts) {
  core::SensorArray array{core::ChipConfig::paper_chip()};
  EXPECT_EQ(array.healthy_count(), 4u);
  array.inject_fault(0, 1, core::ElementFault::kStuckDown);
  EXPECT_EQ(array.healthy_count(), 3u);
  EXPECT_FALSE(array.element(0, 1).is_healthy());
  // Re-injecting kNone heals it (set_fault is a plain state change).
  array.inject_fault(0, 1, core::ElementFault::kNone);
  EXPECT_EQ(array.healthy_count(), 4u);
  EXPECT_THROW(array.inject_fault(5, 0, core::ElementFault::kStuckDown),
               std::out_of_range);
}

TEST(SessionFaults, ElementFaultOnReadoutPathReroutesAndKeepsStreaming) {
  // Learn which element the pipeline reads after admission, then kill
  // exactly that one in a second, identically seeded session.
  fleet::SessionConfig probe_config;
  probe_config.seed = 1234;
  fleet::PatientSession probe{0, std::move(probe_config)};
  probe.step(1);
  const std::size_t row = probe.monitor().pipeline().selected_row();
  const std::size_t col = probe.monitor().pipeline().selected_col();

  fleet::SessionConfig config;
  config.seed = 1234;
  config.manual_faults.push_back(FaultEvent{.kind = FaultKind::kElementFault,
                                            .at_s = 0.05,
                                            .row = row,
                                            .col = col,
                                            .element_fault = core::ElementFault::kStuckDown,
                                            .throw_count = 0});
  fleet::PatientSession session{1, std::move(config)};
  while (session.stream_time_s() < 0.3) session.step(64);

  ASSERT_EQ(session.fault_log().size(), 2u);
  EXPECT_NE(session.fault_log()[0].find("applied: element"), std::string::npos);
  EXPECT_NE(session.fault_log()[1].find("rerouted readout to healthy element"),
            std::string::npos);
  const auto& pipeline = session.monitor().pipeline();
  EXPECT_TRUE(pipeline.array().element(pipeline.selected_row(), pipeline.selected_col())
                  .is_healthy());
  EXPECT_EQ(pipeline.array().healthy_count(), 3u);
  EXPECT_GE(session.stream_time_s(), 0.3);
}

TEST(SessionFaults, LinkBurstDegradesWithoutThrowingAndCountsLosses) {
  fleet::SessionConfig config;
  config.seed = 55;
  config.manual_faults.push_back(FaultEvent{.kind = FaultKind::kLinkBurst,
                                            .at_s = 0.10,
                                            .duration_s = 0.30,
                                            .throw_count = 0});
  fleet::PatientSession session{0, std::move(config)};
  EXPECT_NE(session.link_stats(), nullptr)
      << "a planned link burst routes the session through the simulated link";
  std::vector<std::int16_t> codes;
  while (session.stream_time_s() < 0.6) {
    session.step(64);
    session.codes().pop_all(codes);
  }
  ASSERT_EQ(session.fault_log().size(), 1u);
  EXPECT_NE(session.fault_log()[0].find("applied: link corruption burst"),
            std::string::npos);
  const auto& stats = *session.link_stats();
  EXPECT_GT(stats.frames_ok, 0u);
  EXPECT_GT(stats.crc_errors + stats.resyncs + stats.lost_frames, 0u)
      << "the burst corrupted nothing";
  // Lossy, never late-wrong: fewer codes than frames acquired, none invented.
  EXPECT_LT(codes.size(), static_cast<std::size_t>(
                              session.stream_time_s() * session.output_rate_hz() + 0.5));
}

TEST(SessionFaults, CleanSessionHasNoLinkRoutingAndEmptyLog) {
  fleet::SessionConfig config;
  config.seed = 55;
  fleet::PatientSession session{0, std::move(config)};
  EXPECT_EQ(session.link_stats(), nullptr);
  EXPECT_TRUE(session.fault_plan().empty());
  session.step(64);
  EXPECT_TRUE(session.fault_log().empty());
}

}  // namespace
