#include "src/fleet/hospital_scheduler.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "src/common/checkpoint.hpp"

namespace tono::fleet {
namespace {

std::size_t resolve_threads_per_shard(std::size_t requested, std::size_t shards) {
  if (requested != 0) return requested;
  const std::size_t hw = std::thread::hardware_concurrency();
  // shards == 0 is rejected by the constructor; guard the division anyway
  // (members initialize before the constructor body runs).
  return std::max<std::size_t>(1, (hw == 0 ? 1 : hw) / std::max<std::size_t>(1, shards));
}

}  // namespace

HospitalScheduler::HospitalScheduler(HospitalConfig config)
    : config_(std::move(config)),
      threads_per_shard_(
          resolve_threads_per_shard(config_.threads_per_shard, config_.shards)),
      tree_(config_.shards) {
  if (config_.shards == 0) {
    throw std::invalid_argument{"HospitalScheduler: shards must be >= 1"};
  }
  if (config_.epoch_batches == 0) {
    throw std::invalid_argument{"HospitalScheduler: epoch_batches must be >= 1"};
  }
  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    Shard shard;
    shard.ward = std::make_unique<WardAggregator>(config_.ward);
    FleetConfig fleet;
    fleet.threads = threads_per_shard_;
    fleet.base_seed = config_.base_seed;
    fleet.stream_name = config_.stream_name;
    fleet.frames_per_step = config_.frames_per_step;
    fleet.max_readmits = config_.max_readmits;
    fleet.readmit_backoff_batches = config_.readmit_backoff_batches;
    fleet.session_id_offset = static_cast<std::uint32_t>(s);
    fleet.session_id_stride = static_cast<std::uint32_t>(config_.shards);
    shard.scheduler = std::make_unique<FleetScheduler>(std::move(fleet), *shard.ward);
    shards_.push_back(std::move(shard));
  }
  if (!config_.snapshot_path.empty()) {
    writer_ = std::make_unique<AsyncSnapshotWriter>(config_.snapshot_path);
  }
  auto& reg = metrics::Registry::global();
  epochs_metric_ = &reg.counter(metrics::names::kHospitalEpochs);
  publishes_metric_ = &reg.counter(metrics::names::kShardMirrorPublishes);
  shards_gauge_ = &reg.gauge(metrics::names::kHospitalShards);
  shards_active_gauge_ = &reg.gauge(metrics::names::kHospitalShardsActive);
  codes_gauge_ = &reg.gauge(metrics::names::kHospitalCodesConsumed);
  alarms_gauge_ = &reg.gauge(metrics::names::kHospitalAlarmsActive);
  epoch_wall_ = &reg.timer(metrics::names::kShardEpochWall);
  shards_gauge_->set(static_cast<double>(shards_.size()));
}

HospitalScheduler::~HospitalScheduler() = default;

std::uint64_t HospitalScheduler::session_seed(std::size_t session_id) const {
  // Every shard shares (base_seed, stream_name); shard 0 answers for all.
  return shards_.front().scheduler->session_seed(session_id);
}

std::uint32_t HospitalScheduler::admit(SessionConfig config, std::string label) {
  // Round-robin by admission order; with (offset=s, stride=shards) inside
  // each shard this yields global id == hospital admission index, and
  // shard_of(id) == id % shards by construction.
  const std::size_t s = admitted_ % shards_.size();
  const std::uint32_t id =
      shards_[s].scheduler->admit(std::move(config), std::move(label));
  ++admitted_;
  return id;
}

std::size_t HospitalScheduler::size() const noexcept { return admitted_; }

std::size_t HospitalScheduler::active_sessions() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) n += shard.scheduler->active_sessions();
  return n;
}

SessionState HospitalScheduler::state(std::uint32_t id) const {
  return shards_[shard_of(id)].scheduler->state(id);
}

std::size_t HospitalScheduler::strikes(std::uint32_t id) const {
  return shards_[shard_of(id)].scheduler->strikes(id);
}

const std::string& HospitalScheduler::quarantine_reason(std::uint32_t id) const {
  return shards_[shard_of(id)].scheduler->quarantine_reason(id);
}

WardSnapshot HospitalScheduler::merge_snapshot_() const {
  std::vector<WardSnapshot> parts;
  parts.reserve(shards_.size());
  for (const auto& shard : shards_) parts.push_back(shard.ward->snapshot());
  return merge_snapshots(std::move(parts));
}

WardSnapshot HospitalScheduler::snapshot() const { return merge_snapshot_(); }

void HospitalScheduler::export_jsonl(std::ostream& os) const {
  fleet::export_jsonl(merge_snapshot_(), os);
}

std::uint64_t HospitalScheduler::snapshots_written() const {
  return writer_ ? writer_->written() : 0;
}

std::uint64_t HospitalScheduler::snapshots_skipped() const {
  return writer_ ? writer_->skipped() : 0;
}

std::vector<std::uint8_t> HospitalScheduler::checkpoint() const {
  CheckpointWriter out;
  out.section("hospital");
  out.u64(epochs_.load(std::memory_order_relaxed));
  out.size(admitted_);
  out.size(shards_.size());
  for (const auto& shard : shards_) {
    shard.scheduler->serialize(out);
    shard.ward->serialize(out);
  }
  return out.finish(kHospitalCheckpointVersion);
}

void HospitalScheduler::restore_checkpoint(const std::vector<std::uint8_t>& blob) {
  CheckpointReader in{blob};
  in.require_version(kHospitalCheckpointVersion);
  in.section("hospital");
  const std::uint64_t epochs = in.u64();
  if (in.size() != admitted_) {
    throw CheckpointError{"hospital checkpoint admission count mismatch"};
  }
  if (in.size() != shards_.size()) {
    throw CheckpointError{"hospital checkpoint shard count mismatch"};
  }
  for (auto& shard : shards_) {
    shard.scheduler->restore(in);
    shard.ward->restore(in);
  }
  in.expect_end();
  // Committed only after the whole blob validated — a throw above leaves the
  // epoch counter (and, because shard restores validate shape before
  // touching sessions, most state) untouched.
  epochs_.store(epochs, std::memory_order_relaxed);
}

bool HospitalScheduler::save_checkpoint() {
  if (config_.checkpoint_path.empty()) return false;
  const auto blob = checkpoint();
  if (!atomic_write_file(config_.checkpoint_path, blob.data(), blob.size())) {
    return false;  // previous complete checkpoint stays in place
  }
  ++checkpoints_saved_;
  return true;
}

bool HospitalScheduler::try_restore_checkpoint() {
  if (config_.checkpoint_path.empty()) return false;
  std::vector<std::uint8_t> blob;
  try {
    blob = read_file_bytes(config_.checkpoint_path);
  } catch (const CheckpointError&) {
    return false;  // no checkpoint yet — fresh start
  }
  // A corrupt or mismatched blob throws out of here: failing loudly beats
  // silently restarting a monitored patient from zero.
  restore_checkpoint(blob);
  return true;
}

void HospitalScheduler::publish_shard_(std::size_t s) {
  const Shard& shard = shards_[s];
  const WardAggregator& ward = *shard.ward;
  ShardStats stats;
  stats[kShardCodes] = ward.codes_consumed();
  stats[kShardEvents] = ward.events_consumed();
  const std::uint64_t event_drops = ward.event_drops();
  stats[kShardCodeDrops] = ward.total_drops() - event_drops;
  stats[kShardEventDrops] = event_drops;
  stats[kShardBlocks] = ward.total_blocks();
  stats[kShardAlarmsActive] = ward.alarms_active();
  stats[kShardEscalations] = ward.escalations();
  stats[kShardRecoveries] = ward.recoveries();
  stats[kShardRetired] = ward.retired();
  stats[kShardActiveSessions] = shard.scheduler->active_sessions();
  stats[kShardBatches] = shard.scheduler->batches();
  tree_.publish(s, stats);
  publishes_metric_->add(1);
}

void HospitalScheduler::on_epoch_() {
  // Runs on exactly one driver thread per phase with every other shard
  // parked at the barrier (or permanently done) — the quiescence point
  // where merged reads are exact. Phases are sequential, satisfying
  // reduce()'s single-reader contract.
  const std::uint64_t epoch = epochs_.fetch_add(1, std::memory_order_relaxed) + 1;
  epochs_metric_->add(1);
  const ShardStats& total = tree_.reduce();
  codes_gauge_->set(static_cast<double>(total[kShardCodes]));
  alarms_gauge_->set(static_cast<double>(total[kShardAlarmsActive]));
  shards_active_gauge_->set(
      static_cast<double>(live_shards_.load(std::memory_order_relaxed)));
  if (writer_ && config_.snapshot_every_epochs > 0 &&
      epoch % config_.snapshot_every_epochs == 0) {
    // Copy ward state and hand it off; serialization and the file write
    // happen on the writer thread, never inside this barrier.
    writer_->submit(merge_snapshot_());
  }
  if (!config_.checkpoint_path.empty() && config_.checkpoint_every_epochs > 0 &&
      epoch % config_.checkpoint_every_epochs == 0) {
    // Every shard is parked at the barrier (or done and drained), every
    // batch ended with a full drain — the rings are quiescent and the blob
    // is a clean batch-boundary cut. The atomic write means a kill at any
    // instant leaves a complete checkpoint on disk.
    (void)save_checkpoint();
  }
}

void HospitalScheduler::shard_loop_(std::size_t s, double until_s,
                                    std::barrier<EpochTick>& epoch) {
  Shard& shard = shards_[s];
  for (;;) {
    bool done = false;
    {
      metrics::TraceSpan span{*epoch_wall_};
      for (std::size_t b = 0; b < config_.epoch_batches; ++b) {
        // Same termination rule as FleetScheduler::run(): an empty batch
        // with a quarantined session still waiting out its backoff is a
        // tick, not the end.
        if (shard.scheduler->step_all(until_s) == 0 &&
            !shard.scheduler->recovery_pending(until_s)) {
          done = true;
          break;
        }
      }
    }
    if (done) {
      // Mirror FleetScheduler::run()'s epilogue so a 1-shard hospital is
      // byte-identical to the plain fleet.
      (void)shard.ward->drain_once();
      shard.ward->settle();
    }
    publish_shard_(s);
    if (done) {
      live_shards_.fetch_sub(1, std::memory_order_relaxed);
      epoch.arrive_and_drop();
      return;
    }
    epoch.arrive_and_wait();
  }
}

void HospitalScheduler::run(double duration_s) {
  live_shards_.store(shards_.size(), std::memory_order_relaxed);
  shards_active_gauge_->set(static_cast<double>(shards_.size()));
  std::barrier<EpochTick> epoch{static_cast<std::ptrdiff_t>(shards_.size()),
                                EpochTick{this}};
  std::vector<std::thread> drivers;
  drivers.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    drivers.emplace_back(
        [this, s, duration_s, &epoch] { shard_loop_(s, duration_s, epoch); });
  }
  for (auto& driver : drivers) driver.join();
  // Every shard joined: the roll-up below is exact, not merely field-exact.
  const ShardStats& total = tree_.reduce();
  codes_gauge_->set(static_cast<double>(total[kShardCodes]));
  alarms_gauge_->set(static_cast<double>(total[kShardAlarmsActive]));
  shards_active_gauge_->set(0.0);
  if (writer_) {
    writer_->submit(merge_snapshot_());
    writer_->flush();
  }
  // Final checkpoint after the epilogue drain: a completed run leaves a blob
  // a restarted process can resume (or verify) from.
  (void)save_checkpoint();
}

}  // namespace tono::fleet
