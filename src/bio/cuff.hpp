// cuff.hpp — oscillometric hand-cuff simulator (the paper's baseline and
// calibration reference).
//
// §1: cuff devices "are only able to accomplish single measurements", and
// §3.2 uses one to calibrate the tactile sensor's systolic/diastolic values.
// The simulator runs the actual oscillometric algorithm on a synthetic
// deflation: cuff pressure ramps down while the oscillation amplitude
// follows a bell-shaped envelope centred on MAP; systolic/diastolic are read
// at fixed height ratios of the envelope (the clinical fixed-ratio method).
// Measurement error therefore emerges from envelope noise and ramp
// discretization, as in a real device, rather than being postulated.
#pragma once

#include <cstdint>

#include "src/common/rng.hpp"

namespace tono::bio {

struct CuffConfig {
  double deflation_rate_mmhg_per_s{3.0};
  double start_pressure_mmhg{180.0};
  double end_pressure_mmhg{40.0};
  /// Envelope width relative to pulse pressure. 0.55 makes the classic
  /// clinical fixed ratios (≈0.5 systolic / ≈0.8 diastolic) self-consistent:
  /// sys − MAP = (2/3)·PP → exp(−0.5·((2/3)/0.55)²) ≈ 0.48 and
  /// MAP − dia = (1/3)·PP → exp(−0.5·((1/3)/0.55)²) ≈ 0.833.
  double envelope_width_factor{0.55};
  /// Height ratios of the fixed-ratio algorithm (see above).
  double systolic_ratio{0.48};
  double diastolic_ratio{0.833};
  /// Relative rms noise on each oscillation-amplitude sample.
  double envelope_noise{0.04};
  /// Minimum time between measurements (a cuff cannot stream) [s].
  double min_measurement_interval_s{30.0};
  std::uint64_t seed{1234};
};

struct CuffReading {
  double systolic_mmhg{0.0};
  double diastolic_mmhg{0.0};
  double map_mmhg{0.0};
  double duration_s{0.0};  ///< how long the measurement took
  bool valid{false};
};

class OscillometricCuff {
 public:
  explicit OscillometricCuff(const CuffConfig& config);

  /// Performs one inflation/deflation measurement against the true arterial
  /// state. `heart_rate_bpm` sets how many envelope samples the deflation
  /// yields (one per beat). Fails (valid = false) if the pressures are
  /// outside the deflation range.
  [[nodiscard]] CuffReading measure(double true_systolic_mmhg, double true_diastolic_mmhg,
                                    double heart_rate_bpm);

  /// Measurements per hour this device can sustain (for the continuous-vs-
  /// intermittent comparison of §1).
  [[nodiscard]] double max_measurements_per_hour() const noexcept;

  [[nodiscard]] const CuffConfig& config() const noexcept { return config_; }

 private:
  CuffConfig config_;
  Rng rng_;
};

}  // namespace tono::bio
