// opamp.hpp — behavioural OTA model for switched-capacitor integrators.
//
// Captures the three op-amp non-idealities that matter for ΔΣ behaviour
// (Boser & Wooley, JSSC 1988; Malcovati et al. behavioural models):
//   * finite DC gain  → leaky integrator (pole moves off z = 1),
//   * finite GBW      → incomplete linear settling of each charge transfer,
//   * finite slew rate→ nonlinear settling for large steps,
// plus input-referred thermal noise, applied per clock phase.
#pragma once

namespace tono::analog {

struct OpAmpConfig {
  double dc_gain{5000.0};          ///< open-loop gain A0 (dimensionless)
  double gbw_hz{10e6};             ///< gain-bandwidth product
  double slew_rate_v_per_s{5e6};   ///< output slew limit
  double noise_vrms{30e-6};        ///< input-referred rms white noise per sample
  /// 1/f noise corner [Hz]: frequency where the flicker PSD crosses the
  /// white floor. 0 disables flicker. The switched-capacitor integrator's
  /// correlated double sampling suppresses it by
  /// ModulatorConfig::cds_flicker_rejection.
  double flicker_corner_hz{0.0};
  double output_swing_v{2.3};      ///< output clips at ±this
  double feedback_factor{0.6};     ///< β of the integrator charge-transfer phase
};

/// Stateless settling calculator (state lives in the integrator).
class OpAmp {
 public:
  explicit OpAmp(const OpAmpConfig& config);

  /// Given a desired output step `delta_v` and the available settling time
  /// `dt`, returns the achieved step after slew-limited + linear settling.
  [[nodiscard]] double settle(double delta_v, double dt) const noexcept;

  /// Per-update integrator leak factor: an ideal integrator multiplies its
  /// previous state by 1; finite gain gives ≈ 1 − 1/(A0·β).
  [[nodiscard]] double leak_factor() const noexcept;

  /// Hard output clip.
  [[nodiscard]] double clip(double v) const noexcept;

  [[nodiscard]] const OpAmpConfig& config() const noexcept { return config_; }

 private:
  OpAmpConfig config_;
  double tau_s_;  ///< closed-loop settling time constant 1 / (2π·β·GBW)
};

}  // namespace tono::analog
