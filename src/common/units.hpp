// units.hpp — physical constants and unit conversions used across tonosim.
//
// All internal computation is SI (pascal, metre, farad, second, volt).
// Clinical blood-pressure values are expressed in mmHg at the API boundary;
// use the conversion helpers here rather than ad-hoc factors.
#pragma once

#include <numbers>

namespace tono::units {

// ---------------------------------------------------------------- constants

/// Boltzmann constant [J/K]. Used for kT/C switched-capacitor noise.
inline constexpr double k_boltzmann = 1.380649e-23;

/// Vacuum permittivity [F/m]. Membrane gap capacitance.
inline constexpr double epsilon0 = 8.8541878128e-12;

/// Standard simulation temperature [K] (body-contact operation, ~310 K would
/// also be defensible; the paper characterizes electrically at room temp).
inline constexpr double room_temperature_kelvin = 300.0;

/// One standard atmosphere [Pa].
inline constexpr double atmosphere_pa = 101325.0;

// ------------------------------------------------------------- pressure

/// Pascals per mmHg (torr), exact by definition of the conventional mmHg.
inline constexpr double pa_per_mmhg = 133.322387415;

[[nodiscard]] constexpr double mmhg_to_pa(double mmhg) noexcept { return mmhg * pa_per_mmhg; }
[[nodiscard]] constexpr double pa_to_mmhg(double pa) noexcept { return pa / pa_per_mmhg; }

/// kPa helpers (membrane mechanics is most readable in kPa).
[[nodiscard]] constexpr double kpa_to_pa(double kpa) noexcept { return kpa * 1e3; }
[[nodiscard]] constexpr double pa_to_kpa(double pa) noexcept { return pa * 1e-3; }

// ------------------------------------------------------------- geometry

[[nodiscard]] constexpr double um_to_m(double um) noexcept { return um * 1e-6; }
[[nodiscard]] constexpr double m_to_um(double m) noexcept { return m * 1e6; }
[[nodiscard]] constexpr double mm_to_m(double mm) noexcept { return mm * 1e-3; }

// ------------------------------------------------------------- electrical

[[nodiscard]] constexpr double ff_to_f(double ff) noexcept { return ff * 1e-15; }
[[nodiscard]] constexpr double pf_to_f(double pf) noexcept { return pf * 1e-12; }
[[nodiscard]] constexpr double f_to_ff(double f) noexcept { return f * 1e15; }
[[nodiscard]] constexpr double f_to_pf(double f) noexcept { return f * 1e12; }

// ------------------------------------------------------------- frequency

inline constexpr double two_pi = 2.0 * std::numbers::pi;

[[nodiscard]] constexpr double hz_to_rad(double hz) noexcept { return hz * two_pi; }
[[nodiscard]] constexpr double bpm_to_hz(double bpm) noexcept { return bpm / 60.0; }
[[nodiscard]] constexpr double hz_to_bpm(double hz) noexcept { return hz * 60.0; }

}  // namespace tono::units
