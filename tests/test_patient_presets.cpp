// Tests for patient presets and the AF rhythm model.
#include <gtest/gtest.h>

#include <vector>

#include "src/bio/pulse_generator.hpp"
#include "src/common/statistics.hpp"

namespace tono::bio {
namespace {

std::vector<double> intervals_of(const PulseConfig& cfg, double duration_s = 120.0) {
  ArterialPulseGenerator gen{cfg};
  (void)gen.generate(250.0, static_cast<std::size_t>(duration_s * 250.0));
  std::vector<double> out;
  for (const auto& b : gen.beat_truth()) out.push_back(b.interval_s);
  return out;
}

TEST(PatientPresets, AllConstructible) {
  for (const auto& cfg :
       {PatientPresets::normotensive(), PatientPresets::hypertensive(),
        PatientPresets::hypotensive(), PatientPresets::tachycardic(),
        PatientPresets::elderly_stiff(), PatientPresets::atrial_fibrillation()}) {
    EXPECT_NO_THROW((ArterialPulseGenerator{cfg}));
  }
}

TEST(PatientPresets, PressureOrdering) {
  EXPECT_GT(PatientPresets::hypertensive().systolic_mmhg,
            PatientPresets::normotensive().systolic_mmhg);
  EXPECT_LT(PatientPresets::hypotensive().systolic_mmhg,
            PatientPresets::normotensive().systolic_mmhg);
  EXPECT_GT(PatientPresets::tachycardic().heart_rate_bpm, 100.0);
}

TEST(PatientPresets, SetpointsReproduced) {
  auto cfg = PatientPresets::hypertensive();
  cfg.drift_mmhg_per_sqrt_s = 0.0;
  ArterialPulseGenerator gen{cfg};
  (void)gen.generate(250.0, 250 * 40);
  EXPECT_NEAR(gen.mean_systolic_mmhg(), 165.0, 5.0);
  EXPECT_NEAR(gen.mean_diastolic_mmhg(), 102.0, 5.0);
}

TEST(AtrialFibrillation, IntervalsFarMoreIrregular) {
  auto af = PatientPresets::atrial_fibrillation();
  auto nsr = PatientPresets::normotensive();
  const auto iv_af = intervals_of(af);
  const auto iv_nsr = intervals_of(nsr);
  ASSERT_GE(iv_af.size(), 30u);
  ASSERT_GE(iv_nsr.size(), 30u);
  const double cv_af = stddev(iv_af) / mean(iv_af);
  const double cv_nsr = stddev(iv_nsr) / mean(iv_nsr);
  EXPECT_GT(cv_af, 3.0 * cv_nsr);
  EXPECT_GT(cv_af, 0.10);
}

TEST(AtrialFibrillation, PulseDeficitAfterShortIntervals) {
  // Short preceding interval → weaker beat (smaller pulse pressure).
  auto cfg = PatientPresets::atrial_fibrillation();
  cfg.drift_mmhg_per_sqrt_s = 0.0;
  cfg.respiration_pp_depth = 0.0;
  ArterialPulseGenerator gen{cfg};
  (void)gen.generate(250.0, 250 * 180);
  const auto& truth = gen.beat_truth();
  ASSERT_GE(truth.size(), 100u);
  // Correlate preceding interval with this beat's pulse pressure.
  std::vector<double> prev_iv;
  std::vector<double> pp;
  for (std::size_t i = 1; i < truth.size(); ++i) {
    prev_iv.push_back(truth[i - 1].interval_s);
    pp.push_back(truth[i].systolic_mmhg - truth[i].diastolic_mmhg);
  }
  EXPECT_GT(pearson_correlation(prev_iv, pp), 0.4);
}

TEST(AtrialFibrillation, RegularRhythmUnaffectedByMechanism) {
  // af_irregularity = 0: pulse pressure independent of preceding interval.
  // Respiration is disabled entirely here — RSA modulates the intervals and
  // the baseline swing leaks into measured extrema at the same phase, which
  // would correlate the two through a common cause rather than the AF
  // filling mechanism under test.
  PulseConfig cfg;
  cfg.drift_mmhg_per_sqrt_s = 0.0;
  cfg.respiration_pp_depth = 0.0;
  cfg.respiration_baseline_mmhg = 0.0;
  cfg.rsa_depth = 0.0;
  cfg.mayer_depth = 0.0;
  ArterialPulseGenerator gen{cfg};
  (void)gen.generate(250.0, 250 * 120);
  const auto& truth = gen.beat_truth();
  std::vector<double> prev_iv;
  std::vector<double> pp;
  for (std::size_t i = 1; i < truth.size(); ++i) {
    prev_iv.push_back(truth[i - 1].interval_s);
    pp.push_back(truth[i].systolic_mmhg - truth[i].diastolic_mmhg);
  }
  EXPECT_LT(std::abs(pearson_correlation(prev_iv, pp)), 0.3);
}

TEST(ElderlyStiff, AugmentedReflectionInTemplate) {
  const BeatTemplate normal{BeatMorphology::radial()};
  const BeatTemplate stiff{PatientPresets::elderly_stiff().morphology};
  // The reflected-wave region carries more relative pressure for the stiff
  // morphology.
  EXPECT_GT(stiff.value(0.30), normal.value(0.30));
}

}  // namespace
}  // namespace tono::bio
