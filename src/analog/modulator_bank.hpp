// modulator_bank.hpp — K independent ΔΣ modulators stepped in lockstep,
// vectorized across lanes.
//
// The paper's sensor is a 2×2 array (§3: four electrodes over the pressure
// membrane), and characterization sweeps run hundreds of independent trials;
// both want "step K modulators over the same clock window" as one operation.
// The bank exploits that the lanes are *independent*: their per-clock loop
// recurrences are K parallel dependency chains of elementwise IEEE
// arithmetic, which map directly onto SIMD lanes. At construction the bank
// resolves a kernel via simd::active_level() (AVX2 ×4, NEON ×2, or scalar —
// overridable with the TONO_SIMD env knob) and groups lanes into width-W
// *packets* of matching control structure; per frame it batch-generates
// every packet's noise (one Rng::fill_gaussian_multi per source group),
// transposes the plans to [clock][lane], and runs the width-W step kernel
// (bank_kernel.hpp). Lanes that don't fill a packet — remainders,
// heterogeneous structures, or banks built under a scalar dispatch — run the
// original scalar lockstep.
//
// Lane semantics — the contract tests pin:
//   * each lane is a full DeltaSigmaModulator with its own config, seed and
//     noise streams; lanes never share draws;
//   * lane k's bitstream is bit-identical to running that modulator alone
//     through step_capacitive_block (and therefore to n scalar
//     step_capacitive calls) — the bank changes scheduling, never values.
//     This holds under EVERY dispatch level: the vector kernel mirrors
//     step_planned_ expression for expression using only elementwise IEEE
//     ops, and the two transcendental paths (op-amp partial settling,
//     comparator metastability) drop to per-lane scalar callbacks;
//   * outputs are lane-major: bits_out[k * n + i] is lane k, clock i;
//   * a disabled lane (set_lane_enabled — element fault masking) is frozen:
//     not stepped, no noise drawn, its bits region untouched. Re-enabling
//     resumes bit-identically from the frozen state.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/analog/bank_kernel.hpp"
#include "src/analog/modulator.hpp"
#include "src/common/metrics.hpp"
#include "src/common/simd.hpp"

namespace tono::analog {

class ModulatorBank {
 public:
  /// One lane per config. Lanes may differ in every respect (seed, caps,
  /// noise settings) — heterogeneous banks are how sweeps use this.
  explicit ModulatorBank(const std::vector<ModulatorConfig>& configs);

  /// Convenience: K lanes sharing `base`, with per-lane seeds decorrelated
  /// by the same golden-ratio salting Rng::fork uses. Lane 0 keeps
  /// `base.seed` unchanged, so lane 0 reproduces the single-modulator run.
  ModulatorBank(const ModulatorConfig& base, std::size_t lanes);

  /// Runs `n` clocks on every enabled lane in capacitive mode. `c_sense_f` /
  /// `c_ref_f` hold one capacitance per lane; `bits_out` has room for
  /// lanes()·n ints and is filled lane-major (lane k at bits_out[k*n]).
  /// Disabled lanes' regions are left untouched.
  void step_capacitive_block(const double* c_sense_f, const double* c_ref_f,
                             int* bits_out, std::size_t n);

  /// Per-lane variant against each lane's configured on-chip reference
  /// branch (mirrors DeltaSigmaModulator::step_capacitive(c_sense)).
  void step_capacitive_block(const double* c_sense_f, int* bits_out,
                             std::size_t n);

  void reset();

  /// Fault masking (a dead array element mid-run): a disabled lane drops out
  /// of its packet — the survivors regroup into new packets — and is frozen
  /// entirely: no state updates, no noise-stream draws, no output. This is
  /// deliberately NOT "keep converting and discard": a faulted element's
  /// modulator has nothing physical to convert, and freezing its streams
  /// keeps the lane resumable bit-identically if the fault is cleared.
  void set_lane_enabled(std::size_t k, bool enabled);
  [[nodiscard]] bool lane_enabled(std::size_t k) const {
    return enabled_.at(k) != 0;
  }
  [[nodiscard]] std::size_t enabled_lanes() const noexcept;

  /// Checkpointing: every lane's full modulator state plus the enable mask,
  /// in lane order. The lane count is config-derived and verified on
  /// restore; the packet grouping is layout, rebuilt lazily.
  void serialize(CheckpointWriter& out) const;
  void restore(CheckpointReader& in);

  [[nodiscard]] std::size_t lanes() const noexcept { return lanes_.size(); }
  [[nodiscard]] DeltaSigmaModulator& lane(std::size_t k) { return lanes_[k]; }
  [[nodiscard]] const DeltaSigmaModulator& lane(std::size_t k) const {
    return lanes_[k];
  }

  /// The SIMD dispatch this bank resolved at construction (fixed for its
  /// lifetime; simd::force_active_level before construction to override).
  [[nodiscard]] simd::Level simd_level() const noexcept { return level_; }
  /// Kernel lane width (1 = scalar lockstep).
  [[nodiscard]] std::size_t simd_width() const noexcept { return width_; }

 private:
  static constexpr std::size_t kFrame = DeltaSigmaModulator::NoisePlan::kFrame;
  static constexpr std::size_t kMaxW = bankkernel::kMaxWidth;

  /// W lanes whose configs share one control structure (loop order, settling,
  /// which noise sources exist — the kernel's per-packet branches), laid out
  /// SoA. Lane values (seeds, capacitances, magnitudes) are free to differ.
  struct Packet {
    std::array<std::size_t, kMaxW> lane{};  ///< bank lane index per slot

    // Per-lane state, loaded from the lane objects at block start and
    // written back at block end (the lane objects stay authoritative
    // between blocks, so checkpointing never sees this scratch).
    alignas(64) std::array<double, kMaxW> x1{};
    std::array<double, kMaxW> x2{};
    std::array<double, kMaxW> d{};
    std::array<double, kMaxW> last{};
    std::array<double, kMaxW> time_s{};
    std::array<double, kMaxW> max1{};
    std::array<double, kMaxW> max2{};
    std::array<double, kMaxW> clips{};

    // Per-lane invariants (construction-time except u, set per block).
    alignas(64) std::array<double, kMaxW> u{};
    std::array<double, kMaxW> g1{};
    std::array<double, kMaxW> a1{};
    std::array<double, kMaxW> p2{};
    std::array<double, kMaxW> a2{};
    std::array<double, kMaxW> scale{};
    std::array<double, kMaxW> leak1{};
    std::array<double, kMaxW> leak2{};
    std::array<double, kMaxW> swing1{};
    std::array<double, kMaxW> swing2{};
    std::array<double, kMaxW> settle1{};
    std::array<double, kMaxW> settle2{};
    std::array<double, kMaxW> comp_offset{};
    std::array<double, kMaxW> comp_halfhyst{};
    std::array<double, kMaxW> comp_band{};
    std::array<double, kMaxW> clock_period{};

    // Per-frame noise plans transposed to [clock][lane], stride = the bank's
    // kernel width (one contiguous vector load per clock per source).
    alignas(64) std::array<double, kFrame * kMaxW> ktc{};
    std::array<double, kFrame * kMaxW> ref{};
    std::array<double, kFrame * kMaxW> op1{};
    std::array<double, kFrame * kMaxW> fl1{};
    std::array<double, kFrame * kMaxW> op2{};
    std::array<double, kFrame * kMaxW> fl2{};
    std::array<double, kFrame * kMaxW> comp{};

    std::array<int*, kMaxW> bits{};  ///< per-slot output cursor (per frame)

    // Control structure shared by every lane in the packet.
    bool order2{true};
    bool settling{true};
    bool ktc_on{false};
    bool ref_on{false};
    bool op1_on{false};
    bool fl1_on{false};
    bool op2_on{false};
    bool fl2_on{false};
    bool comp_on{false};

    std::size_t frame_len{0};  ///< current frame length (metastable resync)
    ModulatorBank* owner{nullptr};
  };

  /// Control-structure key: lanes group into a packet iff equal. Matches the
  /// kernel's per-packet branch set exactly.
  [[nodiscard]] std::uint32_t structure_key_(std::size_t k) const noexcept;

  void init_metrics_();
  /// Regroups enabled lanes into packets of width_ + scalar remainder.
  void rebuild_packets_();
  /// Loads lane state/invariants into the packets at block start.
  void load_packet_state_();
  /// Writes packet state back into the lane objects at block end.
  void store_packet_state_();
  /// One frame's noise for every enabled lane: the scalar fill_noise_plan_
  /// pieces, with each source group's Gaussian draws batched across lanes
  /// through Rng::fill_gaussian_multi (bit-identical per stream).
  void fill_lane_plans_(std::size_t frame);
  /// Shared-stream de-interleave + scale for packet lanes, written straight
  /// into the transposed packet buffers (the per-lane NoisePlan arrays are
  /// only materialized for scalar-stepped lanes). AVX2 banks with all four
  /// shared sources enabled take the fused 4×4-transpose kernel.
  void fuse_shared_packet_plans_(std::size_t frame);
  /// Copies the packets' lanes' remaining plan-sourced arrays (flicker) into
  /// the transposed buffers. The shared sources and comparator noise are
  /// written transposed at generation time and never pass through here.
  void transpose_packet_plans_(std::size_t frame);
  /// Original clock-outer / lane-inner scalar lockstep over `lanes`.
  void step_scalar_lanes_(const std::vector<std::size_t>& lanes, int* bits_out,
                          std::size_t n_total, std::size_t done,
                          std::size_t frame);

  // Masked scalar escapes for the vector kernel (bank_kernel.hpp): `ctx` is
  // the Packet, `slot` the lane's index within it.
  static double settle_cb_(void* ctx, std::size_t slot, int stage, double v);
  static double metastable_cb_(void* ctx, std::size_t slot, std::size_t clock);

  std::vector<DeltaSigmaModulator> lanes_;
  std::vector<DeltaSigmaModulator::CapacitiveInput> inputs_;  ///< scratch
  std::vector<std::uint8_t> enabled_;

  // Kernel dispatch, resolved once at construction.
  simd::Level level_{simd::Level::kScalar};
  std::size_t width_{1};
  void (*kernel_)(bankkernel::PacketView*, std::size_t, std::size_t){nullptr};

  // Packet layout (lazy: rebuilt when the enable mask changes).
  bool packets_dirty_{true};
  std::vector<Packet> packets_;
  std::vector<std::size_t> scalar_lanes_;  ///< enabled lanes outside packets
  std::vector<bankkernel::PacketView> views_;
  static constexpr std::size_t kNoPacket = static_cast<std::size_t>(-1);
  std::vector<std::size_t> lane_packet_;  ///< packet index or kNoPacket
  std::vector<std::size_t> lane_slot_;    ///< slot within that packet

  // Batched-fill scratch (sized at construction).
  std::vector<double> shared_raw_;            ///< lanes × 4·kFrame normals
  std::vector<double> flicker_raw_;           ///< lanes × kFrame normals
  std::vector<Rng*> fill_rngs_;
  std::vector<double*> fill_dests_;
  std::vector<std::size_t> fill_ns_;
  std::vector<std::size_t> fill_lanes_;

  metrics::Gauge* bank_lanes_gauge_{nullptr};
  metrics::Gauge* simd_width_gauge_{nullptr};
  metrics::Timer* step_block_timer_{nullptr};
};

}  // namespace tono::analog
