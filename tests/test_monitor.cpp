// Tests for the end-to-end blood-pressure monitoring session (§3.2 / Fig. 9).
#include "src/core/monitor.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tono::core {
namespace {

ScanConfig quick_scan() {
  ScanConfig s;
  s.dwell_samples = 1200;
  s.settle_samples = 64;
  return s;
}

TEST(Monitor, FullSessionProducesCalibratedWaveform) {
  BloodPressureMonitor mon{ChipConfig::paper_chip(), WristModel{}};
  (void)mon.localize(quick_scan());
  const auto cuff = mon.calibrate(12.0);
  ASSERT_TRUE(cuff.valid);
  const auto rep = mon.monitor(20.0);
  ASSERT_EQ(rep.waveform_mmhg.size(), 20000u);
  ASSERT_GE(rep.beats.beats.size(), 18u);
  // The calibrated waveform sits in the physiological band.
  for (double p : rep.waveform_mmhg) {
    EXPECT_GT(p, 40.0);
    EXPECT_LT(p, 180.0);
  }
}

TEST(Monitor, EstimatesTrackGroundTruth) {
  BloodPressureMonitor mon{ChipConfig::paper_chip(), WristModel{}};
  (void)mon.localize(quick_scan());
  (void)mon.calibrate(12.0);
  const auto rep = mon.monitor(30.0);
  // Accuracy is bounded by the cuff (AAMI-style ±5 mmHg mean error).
  EXPECT_LT(std::abs(rep.systolic_error_mmhg), 6.0);
  EXPECT_LT(std::abs(rep.diastolic_error_mmhg), 6.0);
  EXPECT_LT(std::abs(rep.map_error_mmhg), 6.0);
  EXPECT_NEAR(rep.beats.heart_rate_bpm, rep.truth_heart_rate_bpm, 6.0);
}

TEST(Monitor, ContinuousBeyondCuffCapability) {
  // §1: the cuff manages ~one reading per minute; the tactile sensor streams
  // every beat. Verify the session yields dozens of per-beat readings in the
  // time a single cuff measurement would take.
  BloodPressureMonitor mon{ChipConfig::paper_chip(), WristModel{}};
  (void)mon.localize(quick_scan());
  const auto cuff = mon.calibrate(12.0);
  const auto rep = mon.monitor(cuff.duration_s);  // one cuff-deflation's time
  EXPECT_GE(rep.beats.beats.size(), 40u);
}

TEST(Monitor, ReportIncludesQualityAndPwa) {
  BloodPressureMonitor mon{ChipConfig::paper_chip(), WristModel{}};
  (void)mon.calibrate(10.0);
  const auto rep = mon.monitor(20.0);
  EXPECT_TRUE(rep.quality.usable);
  EXPECT_GT(rep.quality.sqi, 0.5);
  EXPECT_EQ(rep.pulse_wave.per_beat.size(), rep.beats.beats.size());
  EXPECT_GT(rep.pulse_wave.mean_dpdt_max, 100.0);
  EXPECT_NEAR(rep.pulse_wave.mean_pulse_pressure,
              rep.beats.mean_systolic - rep.beats.mean_diastolic, 1.0);
}

TEST(Monitor, CalibrationGainPositiveAndLarge) {
  // Raw values are a small fraction of full scale → mmHg/unit gain ≫ 1.
  BloodPressureMonitor mon{ChipConfig::paper_chip(), WristModel{}};
  (void)mon.localize(quick_scan());
  (void)mon.calibrate(12.0);
  EXPECT_GT(mon.calibration().gain_mmhg_per_unit(), 100.0);
}

TEST(Monitor, TimeVectorMatchesOutputRate) {
  BloodPressureMonitor mon{ChipConfig::paper_chip(), WristModel{}};
  (void)mon.calibrate(10.0);
  const auto rep = mon.monitor(5.0);
  ASSERT_EQ(rep.time_s.size(), rep.waveform_mmhg.size());
  EXPECT_NEAR(rep.time_s[1] - rep.time_s[0], 1e-3, 1e-9);
  EXPECT_GT(rep.time_s.front(), 9.9);  // continues after the calibration window
}

TEST(Monitor, PlacementOffsetWeakensButDoesNotBreak) {
  WristModel offset;
  offset.placement_offset_m = 1.0e-3;  // 1 mm off the artery
  BloodPressureMonitor mon{ChipConfig::paper_chip(), offset};
  (void)mon.localize(quick_scan());
  (void)mon.calibrate(12.0);
  const auto rep = mon.monitor(20.0);
  // Calibration absorbs the gain loss; errors stay bounded.
  EXPECT_LT(std::abs(rep.map_error_mmhg), 8.0);
}

TEST(Monitor, ArtifactsDegradeGracefully) {
  WristModel noisy;
  noisy.enable_artifacts = true;
  noisy.artifacts.spike_rate_hz = 0.02;
  noisy.artifacts.wander_mmhg_per_sqrt_s = 0.2;
  BloodPressureMonitor mon{ChipConfig::paper_chip(), noisy};
  (void)mon.localize(quick_scan());
  (void)mon.calibrate(12.0);
  const auto rep = mon.monitor(30.0);
  ASSERT_GE(rep.beats.beats.size(), 20u);
  EXPECT_LT(std::abs(rep.map_error_mmhg), 12.0);
}

TEST(Monitor, HypertensivePatient) {
  WristModel hyper;
  hyper.pulse.systolic_mmhg = 160.0;
  hyper.pulse.diastolic_mmhg = 100.0;
  BloodPressureMonitor mon{ChipConfig::paper_chip(), hyper};
  (void)mon.localize(quick_scan());
  (void)mon.calibrate(12.0);
  const auto rep = mon.monitor(20.0);
  EXPECT_NEAR(rep.beats.mean_systolic, 160.0, 10.0);
  EXPECT_NEAR(rep.beats.mean_diastolic, 100.0, 10.0);
}

TEST(Monitor, MonitorWithoutCalibrationStaysRaw) {
  BloodPressureMonitor mon{ChipConfig::paper_chip(), WristModel{}};
  EXPECT_TRUE(mon.calibration().is_identity());
  const auto rep = mon.monitor(5.0);
  // Uncalibrated values are normalized ADC output, far from mmHg scale.
  for (double v : rep.waveform_mmhg) EXPECT_LT(std::abs(v), 1.0);
}

}  // namespace
}  // namespace tono::core
