// bank_kernel.hpp — width-W ΔΣ step kernel shared by the ISA translation
// units of the vectorized ModulatorBank.
//
// One PacketView describes a *packet*: W lanes whose configs share the same
// control structure (loop order, settling, which noise sources exist), laid
// out SoA — per-lane state and invariants as width-sized arrays, per-frame
// noise plans transposed to [clock][lane] so each clock is one contiguous
// vector load. Lane *values* (seeds, capacitances, noise magnitudes, inputs)
// are free to differ; only the branch structure must be uniform, because the
// kernel's `if (p.op1)`-style branches are per-packet, not per-lane.
//
// The kernel mirrors DeltaSigmaModulator::step_planned_ expression for
// expression; every arithmetic operation is elementwise IEEE (add/sub/mul/
// div, compare, select, sign flip), which vector units round exactly like
// scalar units — that is the entire bit-exactness argument. The two places
// the scalar model is not elementwise-expressible stay scalar per lane,
// behind masks:
//   * op-amp partial settling (OpAmp::settle calls exp()): lanes whose step
//     exceeds the provable full-settle threshold drop out of the vector for
//     that clock via `settle_fn` and rejoin with the returned value;
//   * comparator metastability (data-dependent Bernoulli + plan resync):
//     lanes inside the metastable band resolve through `metastable_fn`,
//     which replays the scalar slow path and rewrites the lane's comparator
//     plan tail (including the packet's transposed copy) before returning
//     the decision.
// Both are rare at the paper's operating point; their cost amortizes away.
//
// Loop order is clock-outer / packet-inner (mirroring the scalar bank's
// clock-outer / lane-inner lockstep): each packet's per-clock dependency
// chain is long (two divisions plus the comparator decide feed the next
// clock), so interleaving packets lets independent chains overlap in the
// core instead of serializing.
#pragma once

#include <cstddef>

namespace tono::analog::bankkernel {

/// Widest kernel lane count (AVX2: 4 × f64). Packet storage pads to this.
inline constexpr std::size_t kMaxWidth = 4;

struct PacketView {
  std::size_t width{0};  ///< lanes in this packet (== kernel width)

  // Per-lane state, width entries. The owner loads these from the lane
  // objects before a block and writes them back after (see ModulatorBank).
  double* x1{nullptr};
  double* x2{nullptr};
  double* d{nullptr};     ///< previous output bit as ±1.0
  double* last{nullptr};  ///< comparator hysteresis memory as ±1.0
  double* time_s{nullptr};
  double* max1{nullptr};
  double* max2{nullptr};
  double* clips{nullptr};  ///< clipped-update count accumulator (double)

  // Per-lane invariants.
  const double* u{nullptr};       ///< normalized input
  const double* g1{nullptr};      ///< loop.g1
  const double* a1{nullptr};      ///< loop.a1
  const double* p2{nullptr};      ///< loop.g2 * g2_mismatch (pre-multiplied,
                                  ///< same association as the scalar expression)
  const double* a2{nullptr};      ///< loop.a2
  const double* scale{nullptr};   ///< loop.state_scale_v
  const double* leak1{nullptr};   ///< opamp leak factors
  const double* leak2{nullptr};
  const double* swing1{nullptr};  ///< output swings (clip bounds)
  const double* swing2{nullptr};
  const double* settle1{nullptr};  ///< full-settle thresholds
  const double* settle2{nullptr};
  const double* comp_offset{nullptr};
  const double* comp_halfhyst{nullptr};  ///< 0.5 * hysteresis_v, pre-multiplied
  const double* comp_band{nullptr};      ///< metastable band
  const double* clock_period{nullptr};

  // Transposed per-frame noise plans, [clock][lane] with stride = width;
  // nullptr when the source is disabled for this packet (matching the
  // scalar path's conditional adds).
  const double* ktc{nullptr};
  const double* ref{nullptr};
  const double* op1{nullptr};
  const double* fl1{nullptr};
  const double* op2{nullptr};
  const double* fl2{nullptr};
  const double* comp{nullptr};  ///< comparator noise (nullptr = noise off)

  bool order2{true};
  bool settling{true};

  /// Per-lane output bit pointers: lane slot w's bit for clock i goes to
  /// bits[w][i].
  int* const* bits{nullptr};

  // Masked scalar escapes (see file comment). `slot` is the lane's index
  // within this packet; `ctx` identifies the packet to the owner.
  void* ctx{nullptr};
  double (*settle_fn)(void* ctx, std::size_t slot, int stage,
                      double v){nullptr};
  double (*metastable_fn)(void* ctx, std::size_t slot,
                          std::size_t clock){nullptr};
};

/// ISA entry points, one TU each (modulator_bank_avx2.cpp / _neon.cpp).
/// Every packet must have width == the kernel's lane count.
void run_packets_avx2(PacketView* packets, std::size_t n_packets,
                      std::size_t n_clocks);
void run_packets_neon(PacketView* packets, std::size_t n_packets,
                      std::size_t n_clocks);

/// One packet's shared-stream fusion job: turn each lane's raw standard
/// normals (interleaved [kT/C, ref, op1, op2] per clock) directly into the
/// packet's scaled, [clock][lane]-transposed plan buffers, skipping the
/// intermediate per-lane NoisePlan arrays entirely. Only built for packets
/// with all four shared sources enabled (four draws per clock — the
/// default operating point); other structures take the generic path in
/// ModulatorBank::fuse_shared_packet_plans_.
struct SharedFuseJob {
  const double* raw[kMaxWidth];  ///< per-slot raw stream, 4 normals/clock
  double* ktc;                   ///< dest [clock*width + slot]
  double* ref;
  double* op1;
  double* op2;
  // Per-slot scale constants, width entries each, mirroring
  // DeltaSigmaModulator::build_shared_plan_'s draw-site expressions.
  double sigma_u[kMaxWidth];   ///< kT/C:  0 + sigma_u·raw
  double ref_vrms[kMaxWidth];  ///< ref:   (0 + ref_vrms·raw) / vref
  double vref[kMaxWidth];
  double op1_vrms[kMaxWidth];  ///< op1:   (0 + op1_vrms·raw) / scale
  double op2_vrms[kMaxWidth];  ///< op2:   (0 + op2_vrms·raw) / scale
  double scale[kMaxWidth];
};

/// AVX2 fused de-interleave + scale + 4×4 transpose (width must be 4).
/// Elementwise mul/add/div in the exact scalar association, so each value
/// is bit-identical to build_shared_plan_ + the old copy-transpose.
void fuse_shared4_avx2(const SharedFuseJob& job, std::size_t n_clocks);

/// The kernel template the ISA TUs instantiate with their vector-ops policy
/// V (width V::kW, vector type V::D, mask type V::M plus the elementwise ops
/// used below). Defined in the header so each ISA TU compiles its own copy
/// with its own target flags; nothing here is ISA-specific.
template <class V>
inline void run_packets(PacketView* packets, std::size_t n_packets,
                        std::size_t n_clocks) {
  using D = typename V::D;
  for (std::size_t i = 0; i < n_clocks; ++i) {
    for (std::size_t pi = 0; pi < n_packets; ++pi) {
      PacketView& p = packets[pi];
      const std::size_t off = i * V::kW;
      const D scale = V::load(p.scale);
      const D d = V::load(p.d);
      D x1 = V::load(p.x1);

      // u_total = u + extra_noise_u + ref_err_u * d  (zeros when off, exactly
      // as the scalar path computes with its zero-initialized locals).
      const D ref = p.ref ? V::load(p.ref + off) : V::zero();
      const D ktc = p.ktc ? V::load(p.ktc + off) : V::zero();
      const D u_total = V::add(V::add(V::load(p.u), ktc), V::mul(ref, d));

      // delta1 = g1*u_total - a1*d*(1 + ref_err_u)
      D delta1 = V::sub(
          V::mul(V::load(p.g1), u_total),
          V::mul(V::mul(V::load(p.a1), d), V::add(V::one(), ref)));
      if (p.op1) delta1 = V::add(delta1, V::load(p.op1 + off));
      if (p.fl1) delta1 = V::add(delta1, V::load(p.fl1 + off));
      if (p.settling) {
        const D v1 = V::mul(delta1, scale);
        D numer = V::select(V::cmp_eq(v1, V::zero()), V::zero(), v1);
        const typename V::M slow = V::cmp_nle(V::abs(v1), V::load(p.settle1));
        if (V::any(slow)) {
          double va[V::kW];
          double na[V::kW];
          V::store(va, v1);
          V::store(na, numer);
          unsigned m = V::mask(slow);
          do {
            const unsigned w = V::ctz(m);
            m &= m - 1;
            na[w] = p.settle_fn(p.ctx, w, 1, va[w]);
          } while (m != 0);
          numer = V::load(na);
        }
        delta1 = V::div(numer, scale);
      }
      const D x1_prev = x1;
      const D x1_new = V::add(V::mul(V::load(p.leak1), x1), delta1);
      const D v_x1 = V::mul(x1_new, scale);
      const D sw1 = V::load(p.swing1);
      const D nsw1 = V::neg(sw1);
      const D clipped1 =
          V::select(V::cmp_lt(v_x1, nsw1), nsw1,
                    V::select(V::cmp_lt(sw1, v_x1), sw1, v_x1));
      x1 = V::div(clipped1, scale);
      D clips = V::load(p.clips);
      clips = V::add(
          clips, V::select(V::cmp_neq(x1, x1_new), V::one(), V::zero()));
      {
        const D ax1 = V::abs(V::mul(x1, scale));
        const D mx1 = V::load(p.max1);
        V::store(p.max1, V::select(V::cmp_lt(mx1, ax1), ax1, mx1));
      }
      V::store(p.x1, x1);

      D y;
      if (p.order2) {
        D x2 = V::load(p.x2);
        // delta2 = (g2 * g2_mismatch) * x1_prev - a2 * d
        D delta2 = V::sub(V::mul(V::load(p.p2), x1_prev),
                          V::mul(V::load(p.a2), d));
        if (p.op2) delta2 = V::add(delta2, V::load(p.op2 + off));
        if (p.fl2) delta2 = V::add(delta2, V::load(p.fl2 + off));
        if (p.settling) {
          const D v2 = V::mul(delta2, scale);
          D numer = V::select(V::cmp_eq(v2, V::zero()), V::zero(), v2);
          const typename V::M slow =
              V::cmp_nle(V::abs(v2), V::load(p.settle2));
          if (V::any(slow)) {
            double va[V::kW];
            double na[V::kW];
            V::store(va, v2);
            V::store(na, numer);
            unsigned m = V::mask(slow);
            do {
              const unsigned w = V::ctz(m);
              m &= m - 1;
              na[w] = p.settle_fn(p.ctx, w, 2, va[w]);
            } while (m != 0);
            numer = V::load(na);
          }
          delta2 = V::div(numer, scale);
        }
        const D x2_new = V::add(V::mul(V::load(p.leak2), x2), delta2);
        const D v_x2 = V::mul(x2_new, scale);
        const D sw2 = V::load(p.swing2);
        const D nsw2 = V::neg(sw2);
        const D clipped2 =
            V::select(V::cmp_lt(v_x2, nsw2), nsw2,
                      V::select(V::cmp_lt(sw2, v_x2), sw2, v_x2));
        x2 = V::div(clipped2, scale);
        clips = V::add(
            clips, V::select(V::cmp_neq(x2, x2_new), V::one(), V::zero()));
        {
          const D ax2 = V::abs(V::mul(x2, scale));
          const D mx2 = V::load(p.max2);
          V::store(p.max2, V::select(V::cmp_lt(mx2, ax2), ax2, mx2));
        }
        V::store(p.x2, x2);
        y = V::mul(x2, scale);
      } else {
        y = V::mul(x1, scale);
      }
      V::store(p.clips, clips);

      // Comparator decide (decide_planned): v = y - offset [+ noise];
      // v -= halfhyst * (-last); |v| < band → metastable slow path.
      D cv = V::sub(y, V::load(p.comp_offset));
      if (p.comp) cv = V::add(cv, V::load(p.comp + off));
      cv = V::sub(cv,
                  V::mul(V::load(p.comp_halfhyst), V::neg(V::load(p.last))));
      D newlast =
          V::select(V::cmp_ge(cv, V::zero()), V::one(), V::neg(V::one()));
      const typename V::M meta = V::cmp_lt(V::abs(cv), V::load(p.comp_band));
      if (V::any(meta)) {
        double la[V::kW];
        V::store(la, newlast);
        unsigned m = V::mask(meta);
        do {
          const unsigned w = V::ctz(m);
          m &= m - 1;
          la[w] = p.metastable_fn(p.ctx, w, i);
        } while (m != 0);
        newlast = V::load(la);
      }
      V::store(p.last, newlast);
      V::store(p.d, newlast);
      V::store(p.time_s,
               V::add(V::load(p.time_s), V::load(p.clock_period)));
      double lb[V::kW];
      V::store(lb, newlast);
      for (std::size_t w = 0; w < V::kW; ++w) {
        p.bits[w][i] = static_cast<int>(lb[w]);
      }
    }
  }
}

}  // namespace tono::analog::bankkernel
