// sweep_runner.hpp — deterministic parallel Monte-Carlo / parameter sweeps.
//
// Fans independent trials across a ThreadPool with one hard guarantee: the
// results are bit-identical to running the same trials serially, regardless
// of thread count or scheduling. Two rules buy that determinism:
//
//   1. every trial's randomness is a fresh stream derived from
//      (base_seed, stream_name, trial_index) alone — never from a shared RNG
//      whose draw order would depend on which thread got there first;
//   2. each trial writes into its own pre-allocated result slot, so
//      completion order cannot reorder the output.
//
// Exceptions thrown by a trial are captured per-index; after the sweep the
// lowest-index failure is rethrown, which is also what a serial loop that
// fails on that trial would do (later trials having run is unobservable for
// independent trials).
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "src/common/metrics.hpp"
#include "src/common/rng.hpp"
#include "src/common/thread_pool.hpp"

namespace tono::core {

struct SweepConfig {
  /// Worker threads. 0 → std::thread::hardware_concurrency(); 1 → plain
  /// serial loop (no pool, the reference execution).
  std::size_t threads{0};
  std::uint64_t base_seed{0x70A05EEDull};
  /// Name of the sweep's RNG stream family; two sweeps with different names
  /// draw decorrelated randomness from the same base seed.
  std::string stream_name{"sweep"};
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepConfig config = {});

  /// The deterministic RNG stream of one trial. Depends only on
  /// (base_seed, stream_name, trial_index) — independent of thread count,
  /// scheduling, and of any other trial.
  [[nodiscard]] Rng trial_rng(std::size_t trial_index) const;

  /// A deterministic 64-bit seed for one trial, with the same
  /// (base_seed, stream_name, trial_index)-only dependence as trial_rng().
  /// For trials that build seeded components (ModulatorConfig::seed,
  /// ModulatorBank lanes) rather than drawing from an Rng directly: the
  /// component re-forks its internal streams from this seed, so two trials
  /// never share draws.
  [[nodiscard]] std::uint64_t trial_seed(std::size_t trial_index) const;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return pool_ ? pool_->thread_count() : 1;
  }
  [[nodiscard]] const SweepConfig& config() const noexcept { return config_; }

  /// Runs fn over trial indices [0, n_trials), returning the results in
  /// trial order. `fn` is either fn(index, rng) or fn(index); it must be
  /// safe to call concurrently on distinct trials, and must take all its
  /// randomness from the passed Rng (a shared RNG would break determinism).
  template <typename Fn>
  auto run(std::size_t n_trials, Fn&& fn) {
    using R = decltype(invoke_trial_(fn, std::size_t{0}));
    std::vector<std::optional<R>> slots(n_trials);
    run_indexed_(n_trials,
                 [&](std::size_t i) { slots[i].emplace(invoke_trial_(fn, i)); });
    std::vector<R> out;
    out.reserve(n_trials);
    for (auto& s : slots) out.push_back(std::move(*s));
    return out;
  }

  /// Maps fn over `inputs`, preserving order. `fn` is fn(input, rng) or
  /// fn(input); input i uses trial_rng(i).
  template <typename T, typename Fn>
  auto map(const std::vector<T>& inputs, Fn&& fn) {
    return run(inputs.size(), [&](std::size_t i, Rng& rng) {
      if constexpr (std::is_invocable_v<Fn&, const T&, Rng&>) {
        return fn(inputs[i], rng);
      } else {
        return fn(inputs[i]);
      }
    });
  }

 private:
  template <typename Fn>
  auto invoke_trial_(Fn& fn, std::size_t i) {
    if constexpr (std::is_invocable_v<Fn&, std::size_t, Rng&>) {
      Rng rng = trial_rng(i);
      return fn(i, rng);
    } else {
      return fn(i);
    }
  }

  /// Type-erased deterministic index loop: serial when one thread, strand
  /// workers pulling an atomic counter otherwise. Captures per-trial
  /// exceptions and rethrows the lowest-index one after all strands finish.
  void run_indexed_(std::size_t n, const std::function<void(std::size_t)>& body);

  SweepConfig config_;
  std::unique_ptr<ThreadPool> pool_;  ///< null when threads == 1
  // Observability (resolved once at construction; updated at sweep/strand
  // granularity only, never inside a trial).
  metrics::Counter* runs_metric_;
  metrics::Counter* trials_metric_;
  metrics::Histogram* trials_per_strand_;
  metrics::Timer* run_wall_;
  metrics::Gauge* threads_gauge_;
};

}  // namespace tono::core
