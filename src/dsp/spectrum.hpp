// spectrum.hpp — ADC-style spectral metrics (SNR, SNDR, THD, SFDR, ENOB).
//
// Implements the standard single-tone FFT test used to characterize the ΔΣ
// converter in §3.1 / Fig. 7 of the paper: window the record, locate the
// fundamental, integrate signal power over the leakage bins, separate
// harmonic power from noise power, and report dB metrics.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/dsp/window.hpp"

namespace tono::dsp {

/// Configuration for a single-tone spectral analysis.
struct SpectrumConfig {
  double sample_rate_hz{1000.0};
  WindowKind window{WindowKind::kBlackmanHarris4};
  double kaiser_beta{8.6};
  /// Harmonics (2nd..n-th) treated as distortion rather than noise.
  std::size_t harmonics{5};
  /// Bins around DC excluded from both signal and noise (offset leakage).
  std::size_t dc_exclude_bins{4};
  /// Optional: force the fundamental bin instead of peak-searching
  /// (0 = auto-detect).
  std::size_t forced_fundamental_bin{0};
};

/// Result of analyzing one record.
struct SpectrumAnalysis {
  double fundamental_hz{0.0};
  double fundamental_dbfs{0.0};     ///< amplitude relative to full scale = 1.0
  double signal_power{0.0};
  double noise_power{0.0};
  double distortion_power{0.0};
  double snr_db{0.0};               ///< signal / noise (excl. harmonics)
  double sndr_db{0.0};              ///< signal / (noise + distortion)
  double thd_db{0.0};               ///< distortion / signal (negative value)
  double sfdr_db{0.0};              ///< fundamental / largest spur
  double enob_bits{0.0};            ///< (SNDR - 1.76) / 6.02
  std::size_t fundamental_bin{0};
  std::vector<double> psd_dbfs;     ///< one-sided windowed spectrum in dBFS
  std::vector<double> freq_hz;      ///< bin center frequencies
};

/// Runs the single-tone test on a real record whose length is a power of two
/// (throws std::invalid_argument otherwise). Full scale is amplitude 1.0.
[[nodiscard]] SpectrumAnalysis analyze_tone(std::span<const double> record,
                                            const SpectrumConfig& config);

/// Chooses a coherent test frequency near `target_hz`: an odd number of
/// whole cycles in `record_length` samples at `sample_rate_hz` (odd avoids
/// harmonics folding onto the fundamental's image), which eliminates
/// spectral leakage entirely for periodic records.
[[nodiscard]] double coherent_frequency(double target_hz, double sample_rate_hz,
                                        std::size_t record_length) noexcept;

/// Theoretical SNR limit of an ideal L-th order 1-bit ΔΣ modulator at the
/// given oversampling ratio:
/// SNR = 6.02·B + 1.76 + (20L+10)·log10(OSR) − 20·log10(π^L/√(2L+1)) with
/// B = 1. Used by tests/benches as the shape reference.
[[nodiscard]] double ideal_delta_sigma_snr_db(int order, double osr,
                                              double input_dbfs = 0.0) noexcept;

/// ENOB from an SNDR figure: (sndr_db − 1.76) / 6.02.
[[nodiscard]] double enob_from_sndr(double sndr_db) noexcept;

/// Integrates power over bins [center − halfwidth, center + halfwidth],
/// clamped to the spectrum, and zeroes the claimed bins so later passes skip
/// them. An empty spectrum claims nothing and returns 0.0.
double claim_band(std::vector<double>& pwr, std::size_t center,
                  std::size_t halfwidth) noexcept;

}  // namespace tono::dsp
