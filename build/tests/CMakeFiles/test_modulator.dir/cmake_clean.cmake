file(REMOVE_RECURSE
  "CMakeFiles/test_modulator.dir/test_modulator.cpp.o"
  "CMakeFiles/test_modulator.dir/test_modulator.cpp.o.d"
  "test_modulator"
  "test_modulator.pdb"
  "test_modulator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_modulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
