# Empty dependencies file for test_cuff.
# This may be replaced when dependencies are built.
