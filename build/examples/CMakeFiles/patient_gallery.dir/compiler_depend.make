# Empty compiler generated dependencies file for patient_gallery.
# This may be replaced when dependencies are built.
