#include "src/dsp/fir_filter.hpp"

#include <stdexcept>

#include "src/common/checkpoint.hpp"
#include "src/common/fixed_point.hpp"

namespace tono::dsp {

FirFilter::FirFilter(std::vector<double> coefficients, std::size_t decimation)
    : coeffs_(std::move(coefficients)),
      delay_(coeffs_.size(), 0.0),
      decimation_(decimation) {
  if (coeffs_.empty()) throw std::invalid_argument{"FirFilter: empty coefficients"};
  if (decimation_ == 0) throw std::invalid_argument{"FirFilter: decimation must be >= 1"};
}

std::optional<double> FirFilter::push(double x) {
  delay_[write_pos_] = x;
  write_pos_ = (write_pos_ + 1) % delay_.size();
  phase_ = (phase_ + 1) % decimation_;
  if (phase_ != 0) return std::nullopt;
  // Convolve: newest sample (at write_pos_-1) pairs with coeffs_[0].
  double acc = 0.0;
  std::size_t pos = (write_pos_ + delay_.size() - 1) % delay_.size();
  for (std::size_t k = 0; k < coeffs_.size(); ++k) {
    acc += coeffs_[k] * delay_[pos];
    pos = (pos + delay_.size() - 1) % delay_.size();
  }
  return acc;
}

std::vector<double> FirFilter::process(std::span<const double> xs) {
  std::vector<double> out;
  out.reserve(xs.size() / decimation_ + 1);
  for (double x : xs) {
    if (auto y = push(x)) out.push_back(*y);
  }
  return out;
}

void FirFilter::reset() {
  delay_.assign(delay_.size(), 0.0);
  write_pos_ = 0;
  phase_ = 0;
}

void FirFilter::serialize(CheckpointWriter& out) const {
  out.section("fir");
  out.size(delay_.size());
  for (double v : delay_) out.f64(v);
  out.size(write_pos_);
  out.size(phase_);
}

void FirFilter::restore(CheckpointReader& in) {
  in.section("fir");
  if (in.size() != delay_.size()) {
    throw CheckpointError{"fir checkpoint delay length mismatch"};
  }
  for (auto& v : delay_) v = in.f64();
  write_pos_ = in.size();
  phase_ = in.size();
  if (write_pos_ >= delay_.size() || phase_ >= decimation_) {
    throw CheckpointError{"fir checkpoint cursor out of range"};
  }
}

FixedPointFir::FixedPointFir(std::vector<std::int32_t> coefficient_codes, int coeff_frac_bits,
                             int output_bits, std::size_t decimation)
    : coeffs_(std::move(coefficient_codes)),
      delay_(coeffs_.size(), 0),
      coeff_frac_bits_(coeff_frac_bits),
      output_bits_(output_bits),
      decimation_(decimation) {
  if (coeffs_.empty()) throw std::invalid_argument{"FixedPointFir: empty coefficients"};
  if (decimation_ == 0) throw std::invalid_argument{"FixedPointFir: decimation must be >= 1"};
  if (coeff_frac_bits_ < 1 || coeff_frac_bits_ > 30) {
    throw std::invalid_argument{"FixedPointFir: coeff_frac_bits out of range"};
  }
  if (output_bits_ < 2 || output_bits_ > 62) {
    throw std::invalid_argument{"FixedPointFir: output_bits out of range"};
  }
}

std::optional<std::int64_t> FixedPointFir::push(std::int64_t x) {
  delay_[write_pos_] = x;
  if (++write_pos_ == delay_.size()) write_pos_ = 0;
  if (++phase_ != decimation_) return std::nullopt;
  phase_ = 0;
  // Convolve the circular delay line as two contiguous segments instead of
  // stepping the index modulo per tap: newest sample (just before write_pos_)
  // pairs with coeffs_[0], walking backwards to the start of the buffer, then
  // wrapping to the end. Integer addition is associative, so the MAC result is
  // bit-identical; the contiguous walks let the compiler vectorize.
  const std::size_t n = delay_.size();
  const std::size_t newest = write_pos_ == 0 ? n - 1 : write_pos_ - 1;
  std::int64_t acc = 0;
  std::size_t k = 0;
  for (std::size_t pos = newest + 1; pos-- > 0;) {
    acc += static_cast<std::int64_t>(coeffs_[k++]) * delay_[pos];
  }
  for (std::size_t pos = n; pos-- > newest + 1;) {
    acc += static_cast<std::int64_t>(coeffs_[k++]) * delay_[pos];
  }
  // Shift out the coefficient fraction with rounding, then saturate to the
  // output word — exactly what the FPGA's post-MAC stage does.
  const std::int64_t half = std::int64_t{1} << (coeff_frac_bits_ - 1);
  const std::int64_t rounded = (acc + half) >> coeff_frac_bits_;
  return saturate_to_bits(rounded, output_bits_);
}

std::vector<std::int64_t> FixedPointFir::process(std::span<const std::int64_t> xs) {
  std::vector<std::int64_t> out;
  out.reserve(xs.size() / decimation_ + 1);
  for (std::int64_t x : xs) {
    if (auto y = push(x)) out.push_back(*y);
  }
  return out;
}

void FixedPointFir::reset() {
  delay_.assign(delay_.size(), 0);
  write_pos_ = 0;
  phase_ = 0;
}

void FixedPointFir::serialize(CheckpointWriter& out) const {
  out.section("fixed_fir");
  out.size(delay_.size());
  for (std::int64_t v : delay_) out.i64(v);
  out.size(write_pos_);
  out.size(phase_);
}

void FixedPointFir::restore(CheckpointReader& in) {
  in.section("fixed_fir");
  if (in.size() != delay_.size()) {
    throw CheckpointError{"fixed fir checkpoint delay length mismatch"};
  }
  for (auto& v : delay_) v = in.i64();
  write_pos_ = in.size();
  phase_ = in.size();
  if (write_pos_ >= delay_.size() || phase_ >= decimation_) {
    throw CheckpointError{"fixed fir checkpoint cursor out of range"};
  }
}

}  // namespace tono::dsp
