# Empty compiler generated dependencies file for test_adaptive_monitor.
# This may be replaced when dependencies are built.
