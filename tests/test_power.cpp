// Tests for the chip power model.
#include "src/analog/power.hpp"

#include <gtest/gtest.h>

namespace tono::analog {
namespace {

TEST(PowerModel, NominalPointMatchesPaper) {
  // §3.1: 11.5 mW at 5 V / 128 kHz.
  PowerModel pm;
  EXPECT_NEAR(pm.nominal_w(), 11.5e-3, 0.2e-3);
}

TEST(PowerModel, StaticScalesLinearlyWithVdd) {
  PowerModel pm;
  EXPECT_NEAR(pm.static_w(5.0) / pm.static_w(2.5), 2.0, 1e-12);
}

TEST(PowerModel, DynamicScalesWithFrequency) {
  PowerModel pm;
  EXPECT_NEAR(pm.dynamic_w(5.0, 256e3) / pm.dynamic_w(5.0, 128e3), 2.0, 1e-12);
}

TEST(PowerModel, DynamicScalesWithVddSquared) {
  PowerModel pm;
  EXPECT_NEAR(pm.dynamic_w(5.0, 128e3) / pm.dynamic_w(2.5, 128e3), 4.0, 1e-12);
}

TEST(PowerModel, TotalIsSum) {
  PowerModel pm;
  EXPECT_DOUBLE_EQ(pm.total_w(5.0, 128e3), pm.static_w(5.0) + pm.dynamic_w(5.0, 128e3));
}

TEST(PowerModel, MonotoneInFrequency) {
  PowerModel pm;
  double prev = 0.0;
  for (double f = 32e3; f <= 1024e3; f *= 2.0) {
    const double p = pm.total_w(5.0, f);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(PowerModel, EnergyPerConversion) {
  PowerModel pm;
  // 11.5 mW at 1 kS/s output → 11.5 µJ per conversion.
  EXPECT_NEAR(pm.energy_per_conversion_j(5.0, 128e3, 128.0), 11.5e-6, 0.3e-6);
}

TEST(PowerModel, EnergyPerConversionZeroGuards) {
  PowerModel pm;
  EXPECT_DOUBLE_EQ(pm.energy_per_conversion_j(5.0, 0.0, 128.0), 0.0);
  EXPECT_DOUBLE_EQ(pm.energy_per_conversion_j(5.0, 128e3, 0.0), 0.0);
}

TEST(PowerModel, RejectsNegativeParameters) {
  PowerModelConfig bad;
  bad.analog_bias_a = -1.0;
  EXPECT_THROW((PowerModel{bad}), std::invalid_argument);
}

TEST(PowerModel, StaticDominatesAtNominal) {
  // The SC converter is bias-dominated; dynamic power is the minority share
  // at 128 kHz (it would take ~MHz rates to flip that).
  PowerModel pm;
  EXPECT_GT(pm.static_w(5.0), pm.dynamic_w(5.0, 128e3));
  EXPECT_LT(pm.static_w(5.0), pm.dynamic_w(5.0, 3e6));
}

}  // namespace
}  // namespace tono::analog
