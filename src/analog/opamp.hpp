// opamp.hpp — behavioural OTA model for switched-capacitor integrators.
//
// Captures the three op-amp non-idealities that matter for ΔΣ behaviour
// (Boser & Wooley, JSSC 1988; Malcovati et al. behavioural models):
//   * finite DC gain  → leaky integrator (pole moves off z = 1),
//   * finite GBW      → incomplete linear settling of each charge transfer,
//   * finite slew rate→ nonlinear settling for large steps,
// plus input-referred thermal noise, applied per clock phase.
#pragma once

namespace tono::analog {

struct OpAmpConfig {
  double dc_gain{5000.0};          ///< open-loop gain A0 (dimensionless)
  double gbw_hz{10e6};             ///< gain-bandwidth product
  double slew_rate_v_per_s{5e6};   ///< output slew limit
  double noise_vrms{30e-6};        ///< input-referred rms white noise per sample
  /// 1/f noise corner [Hz]: frequency where the flicker PSD crosses the
  /// white floor. 0 disables flicker. The switched-capacitor integrator's
  /// correlated double sampling suppresses it by
  /// ModulatorConfig::cds_flicker_rejection.
  double flicker_corner_hz{0.0};
  double output_swing_v{2.3};      ///< output clips at ±this
  double feedback_factor{0.6};     ///< β of the integrator charge-transfer phase
};

/// Stateless settling calculator (state lives in the integrator).
class OpAmp {
 public:
  explicit OpAmp(const OpAmpConfig& config);

  /// Given a desired output step `delta_v` and the available settling time
  /// `dt`, returns the achieved step after slew-limited + linear settling.
  ///
  /// This sits on the per-modulator-clock hot path (twice per clock), so the
  /// exponential tails are short-circuited when they are *exactly* complete
  /// in double precision: for the settling margins of the paper's operating
  /// point (dt ≈ 3.9 µs against τ ≈ 27 ns) both branches reduce to the full
  /// step bit-for-bit, and the fast path returns it without calling exp().
  [[nodiscard]] double settle(double delta_v, double dt) const noexcept;

  /// Largest |delta_v| for which settle(delta_v, dt) provably returns
  /// delta_v bit-for-bit (settling is *exactly* complete in double
  /// precision), or 0 when no such bound exists for this dt. Lets a caller
  /// with a loop-invariant dt — the modulator's block path, where dt is
  /// fixed by the clock — hoist the whole settle() call behind one
  /// magnitude compare per step. The bound covers both regimes; see the
  /// rounding proof at the definition.
  [[nodiscard]] double full_settle_threshold(double dt) const noexcept;

  /// Per-update integrator leak factor: an ideal integrator multiplies its
  /// previous state by 1; finite gain gives ≈ 1 − 1/(A0·β). Precomputed at
  /// construction (the division is too expensive for twice per clock).
  [[nodiscard]] double leak_factor() const noexcept { return leak_factor_; }

  /// Hard output clip.
  [[nodiscard]] double clip(double v) const noexcept;

  [[nodiscard]] const OpAmpConfig& config() const noexcept { return config_; }

 private:
  OpAmpConfig config_;
  double tau_s_;          ///< closed-loop settling time constant 1 / (2π·β·GBW)
  double leak_factor_;    ///< cached 1 − 1/(A0·β)
  double handoff_v_;      ///< slew→linear hand-off error: SR·τ
  /// exp(−dt/τ) underflows small enough that 1 − exp(−dt/τ) rounds to 1.0
  /// for dt at or beyond this (≥ 38τ: e⁻³⁸ < 2⁻⁵⁴).
  double linear_exact_dt_s_;
  /// exp(−dt/τ) is exactly +0.0 for dt at or beyond this (≥ 800τ).
  double zero_exp_dt_s_;
};

}  // namespace tono::analog
