// Tests for the Windkessel lumped arterial model.
#include "src/bio/windkessel.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/statistics.hpp"

namespace tono::bio {
namespace {

TEST(Windkessel, MapConvergesToAnalytic) {
  WindkesselModel wk{WindkesselConfig{}};
  const double fs = 1000.0;
  // Run 30 s; average the last 10 s.
  const auto wave = wk.simulate(fs, 30000);
  std::vector<double> tail(wave.end() - 10000, wave.end());
  EXPECT_NEAR(mean(tail), wk.expected_map_mmhg(), 0.05 * wk.expected_map_mmhg());
}

TEST(Windkessel, ExpectedMapIsPhysiological) {
  WindkesselModel wk{WindkesselConfig{}};
  EXPECT_GT(wk.expected_map_mmhg(), 70.0);
  EXPECT_LT(wk.expected_map_mmhg(), 120.0);
}

TEST(Windkessel, PulsePressurePositive) {
  WindkesselModel wk{WindkesselConfig{}};
  const auto wave = wk.simulate(1000.0, 20000);
  std::vector<double> tail(wave.end() - 5000, wave.end());
  const double pp = peak_to_peak(tail);
  EXPECT_GT(pp, 10.0);
  EXPECT_LT(pp, 80.0);
}

TEST(Windkessel, HigherComplianceSmallerPulsePressure) {
  WindkesselConfig stiff;
  stiff.compliance = 0.8;
  WindkesselConfig soft;
  soft.compliance = 2.0;
  auto run = [](const WindkesselConfig& cfg) {
    WindkesselModel wk{cfg};
    const auto w = wk.simulate(1000.0, 20000);
    std::vector<double> tail(w.end() - 5000, w.end());
    return peak_to_peak(tail);
  };
  EXPECT_GT(run(stiff), run(soft));
}

TEST(Windkessel, CharacteristicImpedanceRaisesSystolicPeak) {
  WindkesselConfig two;
  two.characteristic_impedance = 0.0;
  WindkesselConfig three;
  three.characteristic_impedance = 0.08;
  auto sys_of = [](const WindkesselConfig& cfg) {
    WindkesselModel wk{cfg};
    const auto w = wk.simulate(1000.0, 20000);
    std::vector<double> tail(w.end() - 5000, w.end());
    return max_value(tail);
  };
  EXPECT_GT(sys_of(three), sys_of(two));
}

TEST(Windkessel, InflowIntegratesToStrokeVolume) {
  WindkesselModel wk{WindkesselConfig{}};
  const double cycle = 60.0 / wk.config().heart_rate_bpm;
  const int n = 20000;
  double sv = 0.0;
  for (int i = 0; i < n; ++i) {
    sv += wk.inflow_ml_per_s(cycle * i / n) * (cycle / n);
  }
  EXPECT_NEAR(sv, wk.config().stroke_volume_ml, 0.01 * wk.config().stroke_volume_ml);
}

TEST(Windkessel, InflowZeroInDiastole) {
  WindkesselModel wk{WindkesselConfig{}};
  const double cycle = 60.0 / wk.config().heart_rate_bpm;
  EXPECT_DOUBLE_EQ(wk.inflow_ml_per_s(0.9 * cycle), 0.0);
  EXPECT_GT(wk.inflow_ml_per_s(0.1 * cycle), 0.0);
}

TEST(Windkessel, PressureStaysPositiveAndBounded) {
  WindkesselModel wk{WindkesselConfig{}};
  const auto wave = wk.simulate(2000.0, 60000);
  for (double p : wave) {
    EXPECT_GT(p, 20.0);
    EXPECT_LT(p, 250.0);
  }
}

TEST(Windkessel, FasterHeartRateRaisesMap) {
  WindkesselConfig slow;
  slow.heart_rate_bpm = 60.0;
  WindkesselConfig fast;
  fast.heart_rate_bpm = 100.0;
  EXPECT_GT(WindkesselModel{fast}.expected_map_mmhg(),
            WindkesselModel{slow}.expected_map_mmhg());
}

TEST(Windkessel, RejectsBadConfig) {
  WindkesselConfig bad;
  bad.peripheral_resistance = 0.0;
  EXPECT_THROW((WindkesselModel{bad}), std::invalid_argument);
  WindkesselConfig bad2;
  bad2.characteristic_impedance = -0.1;
  EXPECT_THROW((WindkesselModel{bad2}), std::invalid_argument);
  WindkesselConfig bad3;
  bad3.ejection_fraction_of_cycle = 1.5;
  EXPECT_THROW((WindkesselModel{bad3}), std::invalid_argument);
  WindkesselModel ok{WindkesselConfig{}};
  EXPECT_THROW((void)ok.simulate(0.0, 10), std::invalid_argument);
}

TEST(Windkessel, TimeAdvances) {
  WindkesselModel wk{WindkesselConfig{}};
  (void)wk.step(0.001);
  (void)wk.step(0.001);
  EXPECT_NEAR(wk.time_s(), 0.002, 1e-12);
}

}  // namespace
}  // namespace tono::bio
