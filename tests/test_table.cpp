// Tests for report formatting (TextTable / SeriesWriter).
#include "src/common/table.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

namespace tono {
namespace {

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
  EXPECT_EQ(format_double(3.0, 0), "3");
}

TEST(FormatDouble, SpecialValues) {
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(format_double(-std::numeric_limits<double>::infinity()), "-inf");
  EXPECT_EQ(format_double(std::nan("")), "nan");
}

TEST(TextTable, TitleAppears) {
  TextTable t{"My Table"};
  EXPECT_NE(t.to_string().find("== My Table =="), std::string::npos);
}

TEST(TextTable, HeaderAndRows) {
  TextTable t{"T"};
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "2"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("beta"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, NumericRowHelper) {
  TextTable t{"T"};
  t.set_header({"param", "value", "unit"});
  t.add_row("frequency", 128.0, "kHz", 1);
  EXPECT_NE(t.to_string().find("128.0"), std::string::npos);
  EXPECT_NE(t.to_string().find("kHz"), std::string::npos);
}

TEST(TextTable, RowsPaddedToHeaderWidth) {
  TextTable t{"T"};
  t.set_header({"a", "b", "c"});
  t.add_row({"only-one"});
  EXPECT_NO_THROW((void)t.to_string());
}

TEST(TextTable, ColumnsAligned) {
  TextTable t{"T"};
  t.set_header({"x", "y"});
  t.add_row({"longvalue", "1"});
  t.add_row({"s", "2"});
  const std::string s = t.to_string();
  // Both data rows must place 'y'-column values at the same offset.
  std::istringstream iss{s};
  std::string line;
  std::getline(iss, line);  // title
  std::getline(iss, line);  // header
  std::getline(iss, line);  // separator
  std::string r1, r2;
  std::getline(iss, r1);
  std::getline(iss, r2);
  EXPECT_EQ(r1.find('1'), r2.find('2'));
}

TEST(SeriesWriter, CsvFormat) {
  SeriesWriter s{"demo", "t", "v"};
  s.add(0.0, 1.0);
  s.add(1.0, 2.0);
  std::ostringstream oss;
  s.write_csv(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("# series demo"), std::string::npos);
  EXPECT_NE(out.find("t,v"), std::string::npos);
  EXPECT_NE(out.find("1.000000,2.000000"), std::string::npos);
}

TEST(SeriesWriter, SizeAndAccessors) {
  SeriesWriter s{"x", "a", "b"};
  s.add(1.0, 2.0);
  s.add(3.0, 4.0);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.xs()[1], 3.0);
  EXPECT_DOUBLE_EQ(s.ys()[1], 4.0);
}

TEST(SeriesWriter, DecimatedKeepsEndpoints) {
  SeriesWriter s{"d", "x", "y"};
  for (int i = 0; i < 1000; ++i) s.add(i, 2.0 * i);
  const auto dec = s.decimated(100);
  EXPECT_LE(dec.size(), 102u);
  EXPECT_DOUBLE_EQ(dec.xs().front(), 0.0);
  EXPECT_DOUBLE_EQ(dec.xs().back(), 999.0);
}

TEST(SeriesWriter, DecimatedNoOpWhenSmall) {
  SeriesWriter s{"d", "x", "y"};
  s.add(1.0, 1.0);
  EXPECT_EQ(s.decimated(100).size(), 1u);
}

TEST(SeriesWriter, AsciiPlotProducesGrid) {
  SeriesWriter s{"p", "x", "y"};
  for (int i = 0; i < 100; ++i) s.add(i, std::sin(0.1 * i));
  std::ostringstream oss;
  s.write_ascii_plot(oss, 40, 10);
  const std::string out = oss.str();
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("-- p"), std::string::npos);
}

TEST(SeriesWriter, AsciiPlotHandlesConstantSeries) {
  SeriesWriter s{"c", "x", "y"};
  for (int i = 0; i < 10; ++i) s.add(i, 5.0);
  std::ostringstream oss;
  EXPECT_NO_THROW(s.write_ascii_plot(oss));
}

TEST(SeriesWriter, AsciiPlotEmptySeriesIsNoop) {
  SeriesWriter s{"e", "x", "y"};
  std::ostringstream oss;
  s.write_ascii_plot(oss);
  EXPECT_TRUE(oss.str().empty());
}

}  // namespace
}  // namespace tono
