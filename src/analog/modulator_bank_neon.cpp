// modulator_bank_neon.cpp — NEON (aarch64) policy for the bank kernel
// (2 × f64). Same exactness contract as the AVX2 policy: elementwise IEEE
// arithmetic, compare+bsl select with scalar-matching NaN behavior, sign-bit
// abs/neg. NEON f64 is aarch64 baseline, so no extra target flags.
#if defined(TONO_SIMD_NEON)

#include <arm_neon.h>

#include "src/analog/bank_kernel.hpp"

namespace tono::analog::bankkernel {
namespace {

struct VecNeon {
  static constexpr std::size_t kW = 2;
  using D = float64x2_t;
  using M = uint64x2_t;

  static D load(const double* ptr) noexcept { return vld1q_f64(ptr); }
  static void store(double* ptr, D v) noexcept { vst1q_f64(ptr, v); }
  static D zero() noexcept { return vdupq_n_f64(0.0); }
  static D one() noexcept { return vdupq_n_f64(1.0); }
  static D add(D a, D b) noexcept { return vaddq_f64(a, b); }
  static D sub(D a, D b) noexcept { return vsubq_f64(a, b); }
  static D mul(D a, D b) noexcept { return vmulq_f64(a, b); }
  static D div(D a, D b) noexcept { return vdivq_f64(a, b); }
  static D abs(D a) noexcept { return vabsq_f64(a); }
  static D neg(D a) noexcept { return vnegq_f64(a); }
  /// mask ? a : b
  static D select(M mask, D a, D b) noexcept { return vbslq_f64(mask, a, b); }
  static M cmp_lt(D a, D b) noexcept { return vcltq_f64(a, b); }
  static M cmp_ge(D a, D b) noexcept { return vcgeq_f64(a, b); }
  static M cmp_eq(D a, D b) noexcept { return vceqq_f64(a, b); }
  static M not_(M m) noexcept {
    return vreinterpretq_u64_u32(vmvnq_u32(vreinterpretq_u32_u64(m)));
  }
  static M cmp_neq(D a, D b) noexcept { return not_(vceqq_f64(a, b)); }
  static M cmp_nle(D a, D b) noexcept { return not_(vcleq_f64(a, b)); }
  static unsigned mask(M m) noexcept {
    return static_cast<unsigned>(vgetq_lane_u64(m, 0) & 1u) |
           (static_cast<unsigned>(vgetq_lane_u64(m, 1) & 1u) << 1);
  }
  static bool any(M m) noexcept { return mask(m) != 0; }
  static unsigned ctz(unsigned m) noexcept {
    return static_cast<unsigned>(__builtin_ctz(m));
  }
};

}  // namespace

void run_packets_neon(PacketView* packets, std::size_t n_packets,
                      std::size_t n_clocks) {
  run_packets<VecNeon>(packets, n_packets, n_clocks);
}

}  // namespace tono::analog::bankkernel

#endif  // TONO_SIMD_NEON
