# Empty compiler generated dependencies file for bench_tab_electrical.
# This may be replaced when dependencies are built.
