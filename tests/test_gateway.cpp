// Gateway mux/demux tests: channel isolation, corruption tolerance, the
// ≥3-session sequence-wraparound interleaving property, backpressure
// accounting, metrics on/off bit-exactness, and the headline determinism
// contract — a loopback-gateway hospital is bit-identical to direct
// in-process ingest (docs/GATEWAY.md).
#include "src/gateway/gateway.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "src/common/rng.hpp"
#include "src/core/telemetry.hpp"
#include "src/fleet/hospital_scheduler.hpp"
#include "src/gateway/tcp_transport.hpp"
#include "src/gateway/transport.hpp"

namespace tono::gateway {
namespace {

std::vector<std::int16_t> random_codes(Rng& rng, std::size_t n) {
  std::vector<std::int16_t> v(n);
  for (auto& s : v) {
    s = static_cast<std::int16_t>(
        static_cast<std::int64_t>(rng.uniform_below(4096)) - 2048);
  }
  return v;
}

/// Collects every delivery per channel, in order.
struct Sink {
  std::map<std::uint32_t, std::vector<std::int16_t>> codes;
  std::map<std::uint32_t, std::vector<std::vector<std::int16_t>>> frames;

  void attach(GatewayDemux& demux) {
    demux.on_codes([this](std::uint32_t id, std::span<const std::int16_t> c) {
      codes[id].insert(codes[id].end(), c.begin(), c.end());
      frames[id].emplace_back(c.begin(), c.end());
    });
  }
};

TEST(GatewayRoundtrip, SingleChannelDeliversCodesInOrder) {
  LoopbackTransport wire;
  GatewayMux mux{wire};
  GatewayDemux demux{wire};
  mux.open_channel(7);
  demux.open_channel(7);
  Sink sink;
  sink.attach(demux);

  Rng rng{0x6A7E};
  std::vector<std::int16_t> sent;
  for (int round = 0; round < 20; ++round) {
    const auto batch = random_codes(rng, 1 + rng.uniform_below(64));
    sent.insert(sent.end(), batch.begin(), batch.end());
    mux.send(7, batch);
  }
  EXPECT_EQ(demux.pump(), sent.size());
  EXPECT_EQ(sink.codes[7], sent);
  EXPECT_EQ(mux.codes_sent(), sent.size());
  EXPECT_EQ(mux.bytes_sent(), demux.bytes_received());
  EXPECT_EQ(demux.crc_errors(), 0u);
  EXPECT_EQ(demux.resync_bytes(), 0u);
  const auto& stats = demux.channel_stats(7);
  EXPECT_EQ(stats.codes_delivered, sent.size());
  EXPECT_EQ(stats.lost_envelopes, 0u);
  EXPECT_EQ(demux.link_stats(7).frames_ok, stats.frames_decoded);
  EXPECT_EQ(demux.link_stats(7).lost_frames, 0u);
}

TEST(GatewayRoundtrip, ChunksLargeBatchesIntoMaxSizeFrames) {
  LoopbackTransport wire;
  GatewayMux mux{wire};
  GatewayDemux demux{wire};
  mux.open_channel(1);
  demux.open_channel(1);
  Sink sink;
  sink.attach(demux);

  Rng rng{0xC4A};
  const auto batch = random_codes(rng, 200);  // → 80 + 80 + 40
  mux.send(1, batch);
  EXPECT_EQ(mux.frames_muxed(), 3u);
  (void)demux.pump();
  EXPECT_EQ(sink.codes[1], batch);
  ASSERT_EQ(sink.frames[1].size(), 3u);
  EXPECT_EQ(sink.frames[1][0].size(), core::kMaxSamplesPerFrame);
  EXPECT_EQ(sink.frames[1][2].size(), 40u);
}

TEST(GatewayRoundtrip, UnknownChannelIsCountedNeverMisrouted) {
  LoopbackTransport wire;
  GatewayMux mux{wire};
  GatewayDemux demux{wire};
  mux.open_channel(1);
  mux.open_channel(2);
  demux.open_channel(1);  // channel 2 unknown to the receiver
  Sink sink;
  sink.attach(demux);

  Rng rng{0xBEEF};
  const auto a = random_codes(rng, 32);
  const auto b = random_codes(rng, 32);
  mux.send(1, a);
  mux.send(2, b);
  (void)demux.pump();
  EXPECT_EQ(sink.codes[1], a);
  EXPECT_EQ(sink.codes.count(2), 0u);
  EXPECT_EQ(demux.unknown_channel_envelopes(), 1u);
  EXPECT_THROW((void)mux.send(3, a), std::out_of_range);
}

// The satellite property test: ≥3 interleaved sessions driven through the
// 16-bit frame-sequence wrap on one shared wire. Channel isolation must be
// total — per-channel codes byte-exact, per-channel LinkStats clean (the
// wrap never misread as a 65535-frame gap, no cross-contamination between
// the interleaved streams).
TEST(GatewayWraparound, InterleavedChannelsSurviveSequenceWrap) {
  LoopbackTransport wire{1 << 22};
  GatewayMux mux{wire};
  GatewayDemux demux{wire};
  constexpr std::uint32_t kChannels = 3;
  constexpr std::size_t kFrames = 65536 + 96;  // per channel, through the wrap
  for (std::uint32_t c = 0; c < kChannels; ++c) {
    mux.open_channel(c);
    demux.open_channel(c);
  }
  // Checks run streaming (not accumulate-then-compare) to keep memory flat:
  // every delivered code must equal the deterministic per-channel pattern at
  // that channel's own cursor.
  std::vector<std::uint64_t> cursor(kChannels, 0);
  std::uint64_t mismatches = 0;
  demux.on_codes([&](std::uint32_t id, std::span<const std::int16_t> codes) {
    for (const std::int16_t code : codes) {
      const auto expect = static_cast<std::int16_t>(
          (static_cast<std::int64_t>(id) * 701 + cursor[id]) % 2048);
      if (code != expect) ++mismatches;
      ++cursor[id];
    }
  });

  Rng rng{0x57A9};
  std::vector<std::uint64_t> produced(kChannels, 0);
  std::vector<std::int16_t> batch;
  bool pending = false;
  while (produced[0] < kFrames || produced[1] < kFrames || produced[2] < kFrames) {
    // Interleave: a random channel ships a random number of 1-sample frames,
    // so wire order mixes the three sequence spaces thoroughly.
    const std::uint32_t c = static_cast<std::uint32_t>(rng.uniform_below(kChannels));
    if (produced[c] >= kFrames) continue;
    const std::size_t burst =
        std::min<std::size_t>(1 + rng.uniform_below(256), kFrames - produced[c]);
    for (std::size_t i = 0; i < burst; ++i) {
      batch.assign(1, static_cast<std::int16_t>(
                          (static_cast<std::int64_t>(c) * 701 + produced[c]) % 2048));
      mux.send(c, batch);
      ++produced[c];
    }
    pending = true;
    if (rng.uniform_below(4) == 0) {
      (void)demux.pump();
      pending = false;
    }
  }
  if (pending) (void)demux.pump();

  EXPECT_EQ(mismatches, 0u);
  EXPECT_EQ(demux.crc_errors(), 0u);
  EXPECT_EQ(demux.resync_bytes(), 0u);
  for (std::uint32_t c = 0; c < kChannels; ++c) {
    EXPECT_EQ(cursor[c], kFrames) << "channel " << c;
    const auto& stats = demux.channel_stats(c);
    EXPECT_EQ(stats.frames_decoded, kFrames) << "channel " << c;
    EXPECT_EQ(stats.lost_envelopes, 0u) << "channel " << c;
    const auto& link = demux.link_stats(c);
    EXPECT_EQ(link.frames_ok, kFrames) << "channel " << c;
    EXPECT_EQ(link.lost_frames, 0u)
        << "channel " << c << ": wrap misread as a sequence gap";
    EXPECT_EQ(link.crc_errors, 0u) << "channel " << c;
    EXPECT_EQ(link.resyncs, 0u) << "channel " << c;
  }
}

// Wire corruption (every LinkFaultInjector class: drop, bit flips,
// truncation, prepended garbage) may lose envelopes but must never deliver
// a wrong sample: every delivered frame is byte-exact one of the sent
// frames, in order.
TEST(GatewayCorruption, CorruptEnvelopesNeverDeliverAWrongSample) {
  LoopbackTransport sender_side;  // staging queue the harness corrupts
  LoopbackTransport receiver_side;
  GatewayMux mux{sender_side};
  GatewayDemux demux{receiver_side};
  constexpr std::uint32_t kChannels = 3;
  Sink sink;
  sink.attach(demux);
  std::map<std::uint32_t, std::vector<std::vector<std::int16_t>>> ground_truth;
  for (std::uint32_t c = 0; c < kChannels; ++c) {
    mux.open_channel(c);
    demux.open_channel(c);
  }

  Rng rng{0xFA7A1};
  core::LinkFaultInjector injector{core::LinkFaultConfig{}, 0xD06};
  constexpr std::size_t kRounds = 400;
  for (std::size_t round = 0; round < kRounds; ++round) {
    const std::uint32_t c = static_cast<std::uint32_t>(rng.uniform_below(kChannels));
    const auto batch = random_codes(rng, 1 + rng.uniform_below(80));
    ground_truth[c].push_back(batch);
    mux.send(c, batch);
    // Pull the envelope back off the staging queue and corrupt it on the way
    // to the receiver. drop_oldest returns whole envelopes, so the harness
    // corrupts exactly what the wire carried.
    auto envelope = sender_side.drop_oldest();
    ASSERT_FALSE(envelope.empty());
    (void)injector.corrupt(envelope);
    if (!envelope.empty()) ASSERT_TRUE(receiver_side.try_send(envelope));
    (void)demux.pump();
  }

  EXPECT_GT(injector.frames_corrupted(), 0u);
  std::uint64_t losses = 0;
  for (std::uint32_t c = 0; c < kChannels; ++c) {
    // Every delivered frame must match the next not-yet-matched sent frame:
    // an ordered subsequence, never an altered or reordered one.
    std::size_t cursor = 0;
    for (const auto& got : sink.frames[c]) {
      bool matched = false;
      while (cursor < ground_truth[c].size()) {
        if (ground_truth[c][cursor++] == got) {
          matched = true;
          break;
        }
        ++losses;
      }
      ASSERT_TRUE(matched) << "channel " << c
                           << " delivered a frame that was never sent";
    }
    losses += ground_truth[c].size() - cursor;
  }
  EXPECT_GT(losses, 0u) << "injector corrupted frames yet nothing was lost";
  // Losses are *accounted*: corrupt envelopes surfaced as CRC errors or
  // resync bytes, vanished ones as per-channel sequence gaps.
  std::uint64_t lost_envelopes = 0;
  for (std::uint32_t c = 0; c < kChannels; ++c) {
    lost_envelopes += demux.channel_stats(c).lost_envelopes;
  }
  EXPECT_GT(demux.crc_errors() + demux.resync_bytes() + lost_envelopes, 0u);
}

TEST(GatewayBackpressure, DropOldestAccountsShedCodesExactly) {
  // Capacity of ~4 one-frame envelopes; the 5th send must shed the oldest.
  LoopbackTransport wire{4 * envelope_wire_bytes(core::frame_wire_bytes(16))};
  GatewayConfig config;
  config.wire_policy = BackpressurePolicy::kDropOldest;
  GatewayMux mux{wire, config};
  GatewayDemux demux{wire};
  mux.open_channel(1);
  demux.open_channel(1);
  Sink sink;
  sink.attach(demux);

  Rng rng{0xD20};
  constexpr std::size_t kBatches = 64;
  constexpr std::size_t kBatch = 16;
  // Prime the channel (deliver envelope 0) so every later shed lands as a
  // counted sequence gap, then saturate the wire without pumping.
  mux.send(1, random_codes(rng, kBatch));
  (void)demux.pump();
  for (std::size_t i = 0; i < kBatches; ++i) {
    mux.send(1, random_codes(rng, kBatch));  // no pump: the wire saturates
  }
  (void)demux.pump();

  EXPECT_GT(mux.envelopes_dropped(), 0u);
  EXPECT_EQ(mux.codes_sent(), (kBatches + 1) * kBatch);
  // The exact-accounting contract: sent == delivered + dropped, with the
  // dropped count taken from the shed envelopes' own headers.
  EXPECT_EQ(sink.codes[1].size() + mux.codes_dropped(), (kBatches + 1) * kBatch);
  // Sheds drop whole envelopes oldest-first; with the channel primed, every
  // shed envelope shows up as exactly one counted sequence gap.
  EXPECT_EQ(demux.channel_stats(1).lost_envelopes, mux.envelopes_dropped());
  EXPECT_EQ(mux.backpressure_blocks(), 0u);
}

TEST(GatewayBackpressure, BlockPolicyLosesNothingWithAConcurrentConsumer) {
  // One envelope of capacity: every second send must wait for the consumer.
  LoopbackTransport wire{envelope_wire_bytes(core::frame_wire_bytes(16))};
  GatewayMux mux{wire};  // default kBlock
  GatewayDemux demux{wire};
  mux.open_channel(1);
  demux.open_channel(1);
  std::vector<std::int16_t> delivered;
  demux.on_codes([&](std::uint32_t, std::span<const std::int16_t> codes) {
    delivered.insert(delivered.end(), codes.begin(), codes.end());
  });

  Rng rng{0xB10C};
  std::vector<std::int16_t> sent;
  constexpr std::size_t kBatches = 200;
  std::atomic<bool> done{false};
  std::thread consumer{[&] {
    while (!done.load(std::memory_order_acquire)) {
      (void)demux.pump();
      std::this_thread::yield();
    }
    (void)demux.pump();
  }};
  for (std::size_t i = 0; i < kBatches; ++i) {
    const auto batch = random_codes(rng, 16);
    sent.insert(sent.end(), batch.begin(), batch.end());
    mux.send(1, batch);
  }
  done.store(true, std::memory_order_release);
  consumer.join();

  EXPECT_EQ(delivered, sent);
  EXPECT_EQ(mux.codes_dropped(), 0u);
  EXPECT_EQ(mux.envelopes_dropped(), 0u);
}

// The observability satellite's regression: disabling the metrics registry
// must not change a single delivered byte or accounting value.
TEST(GatewayMetrics, MetricsOnOffIsBitExact) {
  auto run = [](bool metrics_on) {
    metrics::set_enabled(metrics_on);
    LoopbackTransport wire;
    GatewayMux mux{wire};
    GatewayDemux demux{wire};
    mux.open_channel(5);
    demux.open_channel(5);
    std::vector<std::int16_t> delivered;
    demux.on_codes([&](std::uint32_t, std::span<const std::int16_t> codes) {
      delivered.insert(delivered.end(), codes.begin(), codes.end());
    });
    Rng rng{0x3E7};
    for (int i = 0; i < 50; ++i) mux.send(5, random_codes(rng, 1 + rng.uniform_below(96)));
    (void)demux.pump();
    metrics::set_enabled(true);
    return std::make_tuple(delivered, mux.codes_sent(), mux.bytes_sent(),
                           demux.bytes_received(),
                           demux.channel_stats(5).frames_decoded);
  };
  EXPECT_EQ(run(true), run(false));
}

/// Builds a hospital whose sessions publish through a per-shard gateway wire
/// (mirrors examples/gateway_server.cpp), runs it, and returns the merged
/// JSONL snapshot bytes.
std::string run_gateway_hospital(std::size_t sessions, std::size_t shards,
                                 double duration_s) {
  fleet::HospitalConfig config;
  config.shards = shards;
  config.threads_per_shard = 1;
  config.base_seed = 77;
  fleet::HospitalScheduler hospital{config};
  struct ShardWire {
    std::unique_ptr<LoopbackTransport> wire;
    std::unique_ptr<GatewayMux> mux;
    std::unique_ptr<GatewayDemux> demux;
  };
  std::vector<ShardWire> wires(shards);
  for (auto& w : wires) {
    w.wire = std::make_unique<LoopbackTransport>();
    w.mux = std::make_unique<GatewayMux>(*w.wire);
    w.demux = std::make_unique<GatewayDemux>(*w.wire);
  }
  for (std::size_t i = 0; i < sessions; ++i) {
    fleet::SessionConfig sc;
    if (i % 2 == 1) sc.scenario = "exercise";
    GatewayMux* mux = wires[i % shards].mux.get();
    sc.code_sink = [mux](std::uint32_t id, std::span<const std::int16_t> codes) {
      mux->send(id, codes);
    };
    const std::uint32_t id = hospital.admit(std::move(sc));
    wires[i % shards].mux->open_channel(id);
    wires[i % shards].demux->open_channel(id);
  }
  for (std::size_t s = 0; s < shards; ++s) {
    auto& w = wires[s];
    w.demux->on_codes([&hospital, s](std::uint32_t id,
                                     std::span<const std::int16_t> codes) {
      hospital.shard(s).session(id)->ingest_codes(codes);
    });
    hospital.shard(s).set_batch_hook([&w] { (void)w.demux->pump(); });
  }
  hospital.run(duration_s);
  std::ostringstream os;
  hospital.export_jsonl(os);
  return os.str();
}

std::string run_direct_hospital(std::size_t sessions, std::size_t shards,
                                double duration_s) {
  fleet::HospitalConfig config;
  config.shards = shards;
  config.threads_per_shard = 1;
  config.base_seed = 77;
  fleet::HospitalScheduler hospital{config};
  for (std::size_t i = 0; i < sessions; ++i) {
    fleet::SessionConfig sc;
    if (i % 2 == 1) sc.scenario = "exercise";
    (void)hospital.admit(std::move(sc));
  }
  hospital.run(duration_s);
  std::ostringstream os;
  hospital.export_jsonl(os);
  return os.str();
}

// The tentpole determinism contract: a loopback-gateway hospital produces
// snapshot bytes identical to direct in-process ingest — the wire adds
// latency, never different bytes.
TEST(GatewayFleet, LoopbackIngestIsBitIdenticalToDirect) {
  const std::string direct = run_direct_hospital(4, 2, 1.0);
  const std::string gateway = run_gateway_hospital(4, 2, 1.0);
  EXPECT_FALSE(direct.empty());
  EXPECT_EQ(direct, gateway);
}

TEST(GatewayTcp, LocalhostRoundtripDeliversEveryCode) {
  std::unique_ptr<TcpListener> listener;
  std::unique_ptr<TcpTransport> tx;
  std::unique_ptr<TcpTransport> rx;
  try {
    listener = std::make_unique<TcpListener>();
    tx = TcpTransport::connect("127.0.0.1", listener->port());
    rx = listener->accept();
  } catch (const TransportError& e) {
    GTEST_SKIP() << "localhost sockets unavailable: " << e.what();
  }
  GatewayMux mux{*tx};
  GatewayDemux demux{*rx};
  mux.open_channel(3);
  mux.open_channel(4);
  demux.open_channel(3);
  demux.open_channel(4);
  Sink sink;
  sink.attach(demux);

  Rng rng{0x7C9};
  std::map<std::uint32_t, std::vector<std::int16_t>> sent;
  for (int round = 0; round < 50; ++round) {
    const std::uint32_t c = 3 + static_cast<std::uint32_t>(rng.uniform_below(2));
    const auto batch = random_codes(rng, 1 + rng.uniform_below(80));
    sent[c].insert(sent[c].end(), batch.begin(), batch.end());
    mux.send(c, batch);
  }
  ASSERT_TRUE(demux.pump_until_bytes(mux.bytes_sent()));
  EXPECT_EQ(sink.codes[3], sent[3]);
  EXPECT_EQ(sink.codes[4], sent[4]);
  EXPECT_EQ(demux.crc_errors(), 0u);
  EXPECT_EQ(demux.channel_stats(3).lost_envelopes, 0u);
  EXPECT_EQ(demux.channel_stats(4).lost_envelopes, 0u);
  tx->close();
  rx->close();
}

}  // namespace
}  // namespace tono::gateway
