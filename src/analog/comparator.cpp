#include "src/analog/comparator.hpp"

#include <cmath>

namespace tono::analog {

int Comparator::decide(double input_v) noexcept {
  double v = input_v - config_.offset_v;
  if (config_.noise_vrms > 0.0) v += rng_.gaussian(0.0, config_.noise_vrms);
  // Hysteresis: the threshold leans toward keeping the previous decision.
  v -= 0.5 * config_.hysteresis_v * static_cast<double>(-last_);
  if (std::abs(v) < config_.metastable_band_v) {
    last_ = rng_.bernoulli(0.5) ? 1 : -1;
    return last_;
  }
  last_ = v >= 0.0 ? 1 : -1;
  return last_;
}

}  // namespace tono::analog
