// Tests for the push-based streaming monitor with alarms.
#include "src/core/streaming_monitor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "src/bio/pulse_generator.hpp"
#include "src/common/metrics.hpp"
#include "src/common/rng.hpp"
#include "src/bio/scenario.hpp"

namespace tono::core {
namespace {

std::vector<double> pulse_wave(const bio::PulseConfig& cfg, double duration_s) {
  bio::ArterialPulseGenerator gen{cfg};
  return gen.generate(1000.0, static_cast<std::size_t>(duration_s * 1000.0));
}

bio::PulseConfig steady() {
  bio::PulseConfig cfg;
  cfg.drift_mmhg_per_sqrt_s = 0.0;
  return cfg;
}

TEST(StreamingMonitor, EmitsEachBeatOnce) {
  StreamingMonitor mon{StreamingConfig{}};
  std::vector<Beat> beats;
  mon.on_beat([&](const Beat& b) { beats.push_back(b); });
  mon.push(pulse_wave(steady(), 30.0));
  // ~36 beats at 72 bpm minus warmup/window edges.
  EXPECT_GE(beats.size(), 25u);
  EXPECT_LE(beats.size(), 40u);
  for (std::size_t i = 1; i < beats.size(); ++i) {
    EXPECT_GT(beats[i].upstroke_s, beats[i - 1].upstroke_s);  // strictly ordered
    EXPECT_GT(beats[i].upstroke_s - beats[i - 1].upstroke_s, 0.3);  // no duplicates
  }
  EXPECT_EQ(mon.beats_emitted(), beats.size());
}

TEST(StreamingMonitor, BeatValuesPhysiological) {
  StreamingMonitor mon{StreamingConfig{}};
  std::vector<Beat> beats;
  mon.on_beat([&](const Beat& b) { beats.push_back(b); });
  mon.push(pulse_wave(steady(), 25.0));
  ASSERT_GE(beats.size(), 15u);
  for (const auto& b : beats) {
    EXPECT_NEAR(b.systolic_value, 120.0, 8.0);
    EXPECT_NEAR(b.diastolic_value, 80.0, 8.0);
  }
}

TEST(StreamingMonitor, NoAlarmOnNormotensivePatient) {
  StreamingMonitor mon{StreamingConfig{}};
  std::vector<AlarmEvent> alarms;
  mon.on_alarm([&](const AlarmEvent& a) { alarms.push_back(a); });
  mon.push(pulse_wave(steady(), 30.0));
  EXPECT_TRUE(alarms.empty());
}

TEST(StreamingMonitor, HypotensionRaisesAndClears) {
  // Feed a scenario that crashes below the systolic-low limit and recovers.
  bio::PulseConfig cfg = steady();
  bio::ArterialPulseGenerator gen{cfg};
  const bio::ScenarioProfile crash{{
      bio::ScenarioKeyframe{0.0, 120.0, 80.0, 72.0},
      bio::ScenarioKeyframe{20.0, 118.0, 78.0, 74.0},
      bio::ScenarioKeyframe{30.0, 80.0, 52.0, 95.0},
      bio::ScenarioKeyframe{45.0, 80.0, 52.0, 95.0},
      bio::ScenarioKeyframe{60.0, 115.0, 76.0, 78.0},
      bio::ScenarioKeyframe{90.0, 118.0, 78.0, 74.0},
  }};
  StreamingMonitor mon{StreamingConfig{}};
  std::vector<AlarmEvent> alarms;
  mon.on_alarm([&](const AlarmEvent& a) { alarms.push_back(a); });
  auto& reg = metrics::Registry::global();
  const auto raised0 = reg.counter(metrics::names::kMonitorAlarmsRaised).value();
  for (int i = 0; i < 90 * 1000; ++i) {
    const double t = i / 1000.0;
    if (i % 100 == 0) crash.apply(gen, t);
    mon.push(gen.sample(0.001));
  }
  // A systolic-low alarm must raise during the crash…
  bool raised = false;
  double raise_time = 0.0;
  for (const auto& a : alarms) {
    if (a.kind == AlarmKind::kSystolicLow && a.active) {
      raised = true;
      raise_time = a.time_s;
      break;
    }
  }
  ASSERT_TRUE(raised);
  EXPECT_GT(raise_time, 20.0);
  EXPECT_LT(raise_time, 45.0);  // bounded latency: within the crash
  // …and clear after recovery.
  bool cleared = false;
  for (const auto& a : alarms) {
    if (a.kind == AlarmKind::kSystolicLow && !a.active && a.time_s > raise_time) {
      cleared = true;
    }
  }
  EXPECT_TRUE(cleared);
  EXPECT_FALSE(mon.alarm_active(AlarmKind::kSystolicLow));
  // The raise must also surface in the observability layer: at least one
  // alarm counted and a positive confirmation latency (confirm_beats = 3
  // spans roughly two beat intervals at these rates).
  EXPECT_GE(reg.counter(metrics::names::kMonitorAlarmsRaised).value() - raised0, 1u);
  const double latency = reg.gauge(metrics::names::kMonitorAlarmLatencyS).value();
  EXPECT_GT(latency, 0.0);
  EXPECT_LT(latency, 10.0);
}

TEST(StreamingMonitor, ConfirmationSuppressesSingleOutlierBeat) {
  // One artefactual deep beat must not alarm with confirm_beats = 3.
  auto wave = pulse_wave(steady(), 30.0);
  // Carve one fake "beat" far below the limit at t = 15 s.
  for (std::size_t i = 15000; i < 15400; ++i) {
    wave[i] = 60.0 + 25.0 * std::sin(2.0 * 3.14159 * (i - 15000) / 800.0);
  }
  StreamingMonitor mon{StreamingConfig{}};
  std::vector<AlarmEvent> alarms;
  mon.on_alarm([&](const AlarmEvent& a) { alarms.push_back(a); });
  mon.push(wave);
  for (const auto& a : alarms) {
    EXPECT_NE(a.kind, AlarmKind::kSystolicLow);
  }
}

TEST(StreamingMonitor, TachycardiaRaisesRateAlarm) {
  bio::PulseConfig fast = steady();
  fast.heart_rate_bpm = 150.0;
  StreamingMonitor mon{StreamingConfig{}};
  std::vector<AlarmEvent> alarms;
  mon.on_alarm([&](const AlarmEvent& a) { alarms.push_back(a); });
  mon.push(pulse_wave(fast, 30.0));
  bool rate_high = false;
  for (const auto& a : alarms) {
    if (a.kind == AlarmKind::kRateHigh && a.active) rate_high = true;
  }
  EXPECT_TRUE(rate_high);
  EXPECT_TRUE(mon.alarm_active(AlarmKind::kRateHigh));
}

TEST(StreamingMonitor, QualityCallbackFires) {
  StreamingMonitor mon{StreamingConfig{}};
  std::size_t quality_events = 0;
  double last_sqi = 0.0;
  mon.on_quality([&](const QualityReport& q, double) {
    ++quality_events;
    last_sqi = q.sqi;
  });
  mon.push(pulse_wave(steady(), 20.0));
  // (20 − 8) / 2 s hops ≈ 7 windows.
  EXPECT_GE(quality_events, 5u);
  EXPECT_GT(last_sqi, 0.5);
}

TEST(StreamingMonitor, QualityGateSuppressesNoise) {
  StreamingMonitor mon{StreamingConfig{}};
  std::size_t beats = 0;
  mon.on_beat([&](const Beat&) { ++beats; });
  // Baseline wander + white converter floor, no pulse.
  std::vector<double> noise(20000);
  double state = 0.0;
  tono::Rng rng{5};
  for (auto& v : noise) {
    state = 0.98 * state + rng.gaussian(0.0, 0.2);   // wander, sigma ~= 1
    v = 90.0 + state + rng.gaussian(0.0, 1.0);       // white converter floor
  }
  mon.push(noise);
  EXPECT_EQ(beats, 0u);
}

TEST(StreamingMonitor, RejectsBadConfig) {
  StreamingConfig bad;
  bad.sample_rate_hz = 0.0;
  EXPECT_THROW((StreamingMonitor{bad}), std::invalid_argument);
  StreamingConfig bad2;
  bad2.window_s = 1.0;
  EXPECT_THROW((StreamingMonitor{bad2}), std::invalid_argument);
  StreamingConfig bad3;
  bad3.hop_s = 20.0;
  EXPECT_THROW((StreamingMonitor{bad3}), std::invalid_argument);
  StreamingConfig bad4;
  bad4.limits.confirm_beats = 0;
  EXPECT_THROW((StreamingMonitor{bad4}), std::invalid_argument);
}

TEST(StreamingMonitor, AlarmToString) {
  EXPECT_EQ(to_string(AlarmKind::kSystolicLow), "systolic-low");
  EXPECT_EQ(to_string(AlarmKind::kRateHigh), "rate-high");
}

}  // namespace
}  // namespace tono::core
