// tactile_imaging — the array as a pressure camera.
//
// The paper's §2 localizes vessels by selecting the strongest element; its
// references [3, 4] build full tactile imagers from the same element type.
// This example scans an extended 4x8 array against a pulsating artery and
// renders the pressure maps as ASCII frames — watch the artery "light up"
// along its axis and pulse over time.
#include <algorithm>
#include <cstdio>
#include <vector>
#include <string>

#include "src/common/units.hpp"
#include "src/core/imaging.hpp"
#include "src/core/monitor.hpp"

int main() {
  using namespace tono;

  auto chip = core::ChipConfig::paper_chip();
  chip.array.rows = 4;
  chip.array.cols = 8;
  chip.mux.rows = 4;
  chip.mux.cols = 8;

  core::WristModel wrist;
  wrist.tissue.lateral_sigma_m = 0.35e-3;   // sharp artery profile
  wrist.vessel_x_m = 0.15e-3;               // artery offset right of center
  core::BloodPressureMonitor monitor{chip, wrist};
  auto field = monitor.contact_field();
  auto& pipe = monitor.pipeline();

  core::ImagerConfig icfg;
  icfg.settle_samples = 10;
  icfg.dwell_samples = 3;
  core::TactileImager imager{icfg};

  std::printf("4x8 tactile array, %.1f frames/s — artery along y at x=+0.15 mm\n\n",
              imager.frame_rate_hz(pipe));

  const auto frames = imager.capture_sequence(pipe, field, 24);
  const std::size_t rows = frames.front().rows;
  const std::size_t cols = frames.front().cols;
  const std::size_t pixels = rows * cols;

  // Fixed-pattern removal (dark-frame subtraction): element mismatch gives
  // each pixel a static offset far larger than the pulsation, exactly like
  // fixed-pattern noise in an image sensor. Subtract the per-pixel mean.
  std::vector<double> mean(pixels, 0.0);
  for (const auto& f : frames) {
    for (std::size_t p = 0; p < pixels; ++p) mean[p] += f.pixels[p];
  }
  for (auto& m : mean) m /= static_cast<double>(frames.size());

  const char* shades = " .:-=+*#%@";
  auto render = [&](const std::vector<double>& img, double lo, double hi) {
    const double span = hi > lo ? hi - lo : 1.0;
    for (std::size_t r = 0; r < rows; ++r) {
      std::fputs("  |", stdout);
      for (std::size_t c = 0; c < cols; ++c) {
        double norm = (img[r * cols + c] - lo) / span;
        norm = std::min(std::max(norm, 0.0), 1.0);
        const auto idx = static_cast<std::size_t>(norm * 9.0 + 0.5);
        std::printf("%c%c", shades[idx], shades[idx]);
      }
      std::puts("|");
    }
  };

  // AC frames: the artery column brightens and dims with the pulse.
  double ac_lo = 1e9;
  double ac_hi = -1e9;
  std::vector<std::vector<double>> ac(frames.size(), std::vector<double>(pixels));
  for (std::size_t i = 0; i < frames.size(); ++i) {
    for (std::size_t p = 0; p < pixels; ++p) {
      ac[i][p] = frames[i].pixels[p] - mean[p];
      ac_lo = std::min(ac_lo, ac[i][p]);
      ac_hi = std::max(ac_hi, ac[i][p]);
    }
  }
  for (std::size_t i = 0; i < frames.size(); i += 3) {
    std::printf("AC frame %zu (t = %.2f s)\n", i, frames[i].start_s);
    render(ac[i], ac_lo, ac_hi);
  }

  // Pulsation-amplitude map: per-pixel peak-to-peak across the sequence —
  // the §2 localization map in one picture.
  std::vector<double> amplitude(pixels, 0.0);
  for (std::size_t p = 0; p < pixels; ++p) {
    double lo = 1e9;
    double hi = -1e9;
    for (const auto& f : ac) {
      lo = std::min(lo, f[p]);
      hi = std::max(hi, f[p]);
    }
    amplitude[p] = hi - lo;
  }
  std::puts("\npulsation-amplitude map (artery = bright column):");
  double amp_hi = 0.0;
  for (double a : amplitude) amp_hi = std::max(amp_hi, a);
  render(amplitude, 0.0, amp_hi);

  std::puts("\nThe bright column marks the artery; its intensity beats with the");
  std::puts("pulse. Strongest-element selection (§2) is the argmax of this map.");
  return 0;
}
