#include "src/common/simd.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace tono::simd {
namespace {

/// Case-insensitive ASCII compare (env values are short keywords).
bool eq_nocase(const char* a, const char* b) noexcept {
  for (; *a && *b; ++a, ++b) {
    const char ca = (*a >= 'A' && *a <= 'Z') ? static_cast<char>(*a + 32) : *a;
    const char cb = (*b >= 'A' && *b <= 'Z') ? static_cast<char>(*b + 32) : *b;
    if (ca != cb) return false;
  }
  return *a == *b;
}

// __builtin_cpu_supports only accepts literals, hence a macro.
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
#define TONO_CPU_HAS(feature) (__builtin_cpu_supports(feature) != 0)
#else
#define TONO_CPU_HAS(feature) false
#endif

}  // namespace

const char* level_name(Level level) noexcept {
  switch (level) {
    case Level::kAvx2: return "avx2";
    case Level::kNeon: return "neon";
    case Level::kScalar: break;
  }
  return "scalar";
}

std::size_t level_width(Level level) noexcept {
  switch (level) {
    case Level::kAvx2: return 4;
    case Level::kNeon: return 2;
    case Level::kScalar: break;
  }
  return 1;
}

Level compiled_level() noexcept {
#if defined(TONO_SIMD_AVX2)
  return Level::kAvx2;
#elif defined(TONO_SIMD_NEON)
  return Level::kNeon;
#else
  return Level::kScalar;
#endif
}

Level runtime_level() noexcept {
#if defined(TONO_SIMD_AVX2)
  // The AVX2 kernels use vfmadd (the pinned log mirrors std::fma), so the
  // runtime gate requires both feature bits.
  return TONO_CPU_HAS("avx2") && TONO_CPU_HAS("fma") ? Level::kAvx2
                                                     : Level::kScalar;
#elif defined(TONO_SIMD_NEON)
  // NEON with double lanes is baseline on aarch64 — no runtime probe needed.
  return Level::kNeon;
#else
  return Level::kScalar;
#endif
}

Level resolve_level(const char* env, Level runtime) noexcept {
  if (env == nullptr || *env == '\0' || eq_nocase(env, "auto")) return runtime;
  if (eq_nocase(env, "scalar") || eq_nocase(env, "off") || eq_nocase(env, "0")) {
    return Level::kScalar;
  }
  Level requested = runtime;
  bool known = false;
  if (eq_nocase(env, "avx2")) {
    requested = Level::kAvx2;
    known = true;
  } else if (eq_nocase(env, "neon")) {
    requested = Level::kNeon;
    known = true;
  }
  if (!known) {
    std::fprintf(stderr,
                 "tonosim: TONO_SIMD=\"%s\" not recognized "
                 "(scalar|avx2|neon|auto); using %s\n",
                 env, level_name(runtime));
    return runtime;
  }
  if (requested != runtime) {
    // A kernel that is not compiled in / not supported by this CPU cannot be
    // forced on; fall back to what can actually run.
    std::fprintf(stderr,
                 "tonosim: TONO_SIMD=\"%s\" unavailable on this build/CPU; "
                 "using %s\n",
                 env, level_name(runtime));
    return runtime;
  }
  return requested;
}

namespace {

std::atomic<int> g_active_level{-1};

}  // namespace

Level active_level() noexcept {
  int cached = g_active_level.load(std::memory_order_acquire);
  if (cached < 0) {
    const Level resolved = resolve_level(std::getenv("TONO_SIMD"), runtime_level());
    cached = static_cast<int>(resolved);
    int expected = -1;
    // First resolver wins; a concurrent force_active_level() is preserved.
    g_active_level.compare_exchange_strong(expected, cached,
                                           std::memory_order_acq_rel);
    cached = g_active_level.load(std::memory_order_acquire);
  }
  return static_cast<Level>(cached);
}

Level force_active_level(Level level) noexcept {
  const Level clamped = (level == Level::kScalar) ? Level::kScalar
                        : (level == runtime_level()) ? level
                                                     : runtime_level();
  g_active_level.store(static_cast<int>(clamped), std::memory_order_release);
  return clamped;
}

std::string cpu_features() {
#if defined(__aarch64__)
  return "neon";
#elif defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  std::string out;
  const auto append = [&out](bool present, const char* name) {
    if (!present) return;
    if (!out.empty()) out += ',';
    out += name;
  };
  append(TONO_CPU_HAS("sse2"), "sse2");
  append(TONO_CPU_HAS("avx"), "avx");
  append(TONO_CPU_HAS("avx2"), "avx2");
  append(TONO_CPU_HAS("fma"), "fma");
  append(TONO_CPU_HAS("avx512f"), "avx512f");
  return out;
#else
  return {};
#endif
}

}  // namespace tono::simd
