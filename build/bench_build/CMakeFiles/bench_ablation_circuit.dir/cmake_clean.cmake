file(REMOVE_RECURSE
  "../bench/bench_ablation_circuit"
  "../bench/bench_ablation_circuit.pdb"
  "CMakeFiles/bench_ablation_circuit.dir/bench_ablation_circuit.cpp.o"
  "CMakeFiles/bench_ablation_circuit.dir/bench_ablation_circuit.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
