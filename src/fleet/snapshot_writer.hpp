// snapshot_writer.hpp — double-buffered asynchronous JSONL snapshots.
//
// Serializing a 1k-session ward snapshot takes milliseconds; doing it inside
// a batch barrier stalls every shard (the flat-scaling failure mode the
// hospital exists to fix). So the epoch step only *copies* ward state into a
// WardSnapshot value and hands it here; serialization and the file write run
// on a dedicated writer thread.
//
// Double buffering, latest-wins: there is exactly one pending slot plus the
// writer's in-flight snapshot. submit() never blocks on I/O — if an earlier
// snapshot is still pending (the writer is behind), it is replaced and
// counted as skipped (hospital.snapshots_skipped). The file is always a
// complete, self-consistent snapshot: the writer serializes to memory, writes
// `<path>.tmp`, fsyncs and atomically renames over the target — so even a
// SIGKILL mid-write leaves the previous complete snapshot, never a torn
// file. flush() waits until the queue is empty
// and the writer is idle — call it before reading the file; the destructor
// flushes implicitly, so the final submitted snapshot is never lost.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "src/common/metrics.hpp"
#include "src/fleet/ward_aggregator.hpp"

namespace tono::fleet {

class AsyncSnapshotWriter {
 public:
  /// Starts the writer thread. Snapshots atomically replace `path` (not
  /// append — the file holds the latest complete snapshot, JSONL inside).
  explicit AsyncSnapshotWriter(std::string path);

  /// Flushes pending work, then joins the writer thread.
  ~AsyncSnapshotWriter();

  AsyncSnapshotWriter(const AsyncSnapshotWriter&) = delete;
  AsyncSnapshotWriter& operator=(const AsyncSnapshotWriter&) = delete;

  /// Queues a snapshot for writing; never blocks on serialization or I/O.
  /// Replaces (and counts as skipped) a still-pending earlier snapshot.
  void submit(WardSnapshot snapshot);

  /// Blocks until every submitted snapshot is written (or superseded).
  void flush();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  /// Snapshots fully written to disk so far.
  [[nodiscard]] std::uint64_t written() const;
  /// Snapshots superseded in the pending slot before the writer got to them.
  [[nodiscard]] std::uint64_t skipped() const;
  /// File-open/write/fsync/rename failures (the writer keeps running and the
  /// previous complete snapshot stays in place; check after flush).
  [[nodiscard]] std::uint64_t failures() const;

 private:
  void loop_();

  std::string path_;
  mutable std::mutex mutex_;
  std::condition_variable wake_cv_;  ///< signals the writer: work or stop
  std::condition_variable idle_cv_;  ///< signals flush(): queue drained
  std::optional<WardSnapshot> pending_;  ///< the single latest-wins slot
  bool writing_{false};                  ///< writer holds an in-flight snapshot
  bool stop_{false};
  std::uint64_t written_{0};
  std::uint64_t skipped_{0};
  std::uint64_t failures_{0};
  metrics::Counter* written_metric_;
  metrics::Counter* skipped_metric_;
  metrics::Timer* write_wall_;
  std::thread thread_;
};

}  // namespace tono::fleet
