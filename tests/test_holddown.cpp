// Tests for the applanation hold-down optimizer.
#include "src/core/holddown.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tono::core {
namespace {

HoldDownConfig quick() {
  HoldDownConfig c;
  c.coarse_steps = 5;
  c.refine_iterations = 2;
  c.dwell_samples = 900;
  return c;
}

TEST(HoldDown, FindsNearOptimalPressure) {
  // The tissue model peaks at optimal_hold_down_mmhg (default 80).
  core::WristModel wrist;
  HoldDownOptimizer opt{quick()};
  const auto r = opt.optimize(ChipConfig::paper_chip(), wrist);
  EXPECT_NEAR(r.best_mmhg, wrist.tissue.optimal_hold_down_mmhg, 25.0);
  EXPECT_GT(r.best_amplitude, 0.0);
}

TEST(HoldDown, TracksShiftedOptimum) {
  core::WristModel wrist;
  wrist.tissue.optimal_hold_down_mmhg = 110.0;
  HoldDownOptimizer opt{quick()};
  const auto r = opt.optimize(ChipConfig::paper_chip(), wrist);
  EXPECT_NEAR(r.best_mmhg, 110.0, 30.0);
}

TEST(HoldDown, OptimumBeatsExtremes) {
  core::WristModel wrist;
  HoldDownOptimizer opt{quick()};
  const auto r = opt.optimize(ChipConfig::paper_chip(), wrist);
  double amp_lo = 0.0;
  double amp_hi = 0.0;
  for (const auto& [hd, amp] : r.profile) {
    if (std::abs(hd - 30.0) < 1.0) amp_lo = amp;
    if (std::abs(hd - 160.0) < 1.0) amp_hi = amp;
  }
  EXPECT_GT(r.best_amplitude, amp_lo);
  EXPECT_GT(r.best_amplitude, amp_hi);
}

TEST(HoldDown, ProfileCoversRangeAndRefines) {
  HoldDownOptimizer opt{quick()};
  const auto r = opt.optimize(ChipConfig::paper_chip(), core::WristModel{});
  // coarse_steps + 2 initial golden points + refine_iterations evaluations.
  EXPECT_EQ(r.profile.size(), 5u + 2u + 2u);
  EXPECT_NEAR(r.profile.front().first, 30.0, 1e-9);
}

TEST(HoldDown, RejectsBadConfig) {
  HoldDownConfig bad;
  bad.min_mmhg = 100.0;
  bad.max_mmhg = 50.0;
  EXPECT_THROW((HoldDownOptimizer{bad}), std::invalid_argument);
  HoldDownConfig bad2;
  bad2.coarse_steps = 2;
  EXPECT_THROW((HoldDownOptimizer{bad2}), std::invalid_argument);
  HoldDownConfig bad3;
  bad3.dwell_samples = 10;
  EXPECT_THROW((HoldDownOptimizer{bad3}), std::invalid_argument);
}

}  // namespace
}  // namespace tono::core
