#include "src/analog/modulator_bank.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/common/checkpoint.hpp"

namespace tono::analog {
namespace {

std::vector<ModulatorConfig> derived_configs(const ModulatorConfig& base,
                                             std::size_t lanes) {
  std::vector<ModulatorConfig> configs(lanes, base);
  for (std::size_t k = 1; k < lanes; ++k) {
    // Same mixing Rng::fork applies to its salt; splitmix64 seeding then
    // scrambles whatever structure remains. Plain `seed + k` would hand
    // splitmix sequential states and give overlapping xoshiro states.
    configs[k].seed =
        base.seed ^ (k * 0x9E3779B97F4A7C15ull + 0x632BE59BD9B4E019ull);
  }
  return configs;
}

}  // namespace

ModulatorBank::ModulatorBank(const std::vector<ModulatorConfig>& configs) {
  if (configs.empty()) {
    throw std::invalid_argument{"ModulatorBank: need at least one lane"};
  }
  lanes_.reserve(configs.size());
  for (const auto& config : configs) lanes_.emplace_back(config);
  inputs_.resize(configs.size());
  enabled_.assign(configs.size(), 1);

  // Resolve the kernel once; the bank's dispatch is fixed for its lifetime
  // (tests pin a level with simd::force_active_level before construction).
  level_ = simd::active_level();
  kernel_ = nullptr;
#if defined(TONO_SIMD_AVX2)
  if (level_ == simd::Level::kAvx2) kernel_ = &bankkernel::run_packets_avx2;
#endif
#if defined(TONO_SIMD_NEON)
  if (level_ == simd::Level::kNeon) kernel_ = &bankkernel::run_packets_neon;
#endif
  if (kernel_ == nullptr) level_ = simd::Level::kScalar;
  width_ = simd::level_width(level_);

  shared_raw_.resize(lanes_.size() * 4 * kFrame);
  flicker_raw_.resize(lanes_.size() * kFrame);
  fill_rngs_.reserve(lanes_.size());
  fill_dests_.reserve(lanes_.size());
  fill_ns_.reserve(lanes_.size());
  fill_lanes_.reserve(lanes_.size());
  init_metrics_();
}

ModulatorBank::ModulatorBank(const ModulatorConfig& base, std::size_t lanes)
    : ModulatorBank(derived_configs(base, lanes)) {}

void ModulatorBank::init_metrics_() {
  auto& reg = metrics::Registry::global();
  bank_lanes_gauge_ = &reg.gauge(metrics::names::kModulatorBankLanes);
  simd_width_gauge_ = &reg.gauge(metrics::names::kBankSimdWidth);
  step_block_timer_ = &reg.timer(metrics::names::kBankStepBlock);
  bank_lanes_gauge_->set(static_cast<double>(lanes_.size()));
  simd_width_gauge_->set(static_cast<double>(width_));
}

std::uint32_t ModulatorBank::structure_key_(std::size_t k) const noexcept {
  // One bit per kernel branch (bank_kernel.hpp): lanes sharing a key take
  // identical per-packet branches, so only their *values* differ.
  const DeltaSigmaModulator& lane = lanes_[k];
  const ModulatorConfig& c = lane.config_;
  const bool order2 = c.order == 2;
  std::uint32_t key = 0;
  key |= order2 ? 1u : 0u;
  key |= c.enable_settling ? 2u : 0u;
  key |= c.enable_ktc_noise ? 4u : 0u;
  key |= c.ref_noise_vrms > 0.0 ? 8u : 0u;
  key |= c.opamp1.noise_vrms > 0.0 ? 16u : 0u;
  key |= lane.flicker_scale1_ > 0.0 ? 32u : 0u;
  key |= (order2 && c.opamp2.noise_vrms > 0.0) ? 64u : 0u;
  key |= (order2 && lane.flicker_scale2_ > 0.0) ? 128u : 0u;
  key |= c.comparator.noise_vrms > 0.0 ? 256u : 0u;
  return key;
}

void ModulatorBank::rebuild_packets_() {
  packets_.clear();
  scalar_lanes_.clear();
  views_.clear();
  lane_packet_.assign(lanes_.size(), kNoPacket);
  lane_slot_.assign(lanes_.size(), 0);
  packets_dirty_ = false;
  if (width_ > 1) {
    // Group enabled lanes by control structure, preserving lane order within
    // each group, then cut each group into full-width packets. Group order
    // follows first appearance, so the layout is deterministic.
    std::vector<std::pair<std::uint32_t, std::vector<std::size_t>>> groups;
    for (std::size_t k = 0; k < lanes_.size(); ++k) {
      if (!enabled_[k]) continue;
      const std::uint32_t key = structure_key_(k);
      auto it = std::find_if(groups.begin(), groups.end(),
                             [key](const auto& g) { return g.first == key; });
      if (it == groups.end()) {
        groups.push_back({key, {k}});
      } else {
        it->second.push_back(k);
      }
    }
    for (const auto& [key, members] : groups) {
      std::size_t i = 0;
      for (; i + width_ <= members.size(); i += width_) {
        Packet p;
        p.owner = this;
        p.order2 = (key & 1u) != 0;
        p.settling = (key & 2u) != 0;
        p.ktc_on = (key & 4u) != 0;
        p.ref_on = (key & 8u) != 0;
        p.op1_on = (key & 16u) != 0;
        p.fl1_on = (key & 32u) != 0;
        p.op2_on = (key & 64u) != 0;
        p.fl2_on = (key & 128u) != 0;
        p.comp_on = (key & 256u) != 0;
        for (std::size_t w = 0; w < width_; ++w) {
          const std::size_t lk = members[i + w];
          const DeltaSigmaModulator& lane = lanes_[lk];
          p.lane[w] = lk;
          lane_packet_[lk] = packets_.size();
          lane_slot_[lk] = w;
          p.g1[w] = lane.config_.loop.g1;
          p.a1[w] = lane.config_.loop.a1;
          // Scalar delta2 is (g2 * g2_mismatch_) * x1_prev under left
          // association; pre-multiplying the first product is exact.
          p.p2[w] = lane.config_.loop.g2 * lane.g2_mismatch_;
          p.a2[w] = lane.config_.loop.a2;
          p.scale[w] = lane.config_.loop.state_scale_v;
          p.leak1[w] = lane.opamp1_.leak_factor();
          p.leak2[w] = lane.opamp2_.leak_factor();
          p.swing1[w] = lane.swing1_v_;
          p.swing2[w] = lane.swing2_v_;
          p.settle1[w] = lane.settle_exact1_v_;
          p.settle2[w] = lane.settle_exact2_v_;
          p.comp_offset[w] = lane.comparator_.config().offset_v;
          // Scalar: 0.5 * hysteresis_v * (−last) — left-associated, so the
          // 0.5·h product is exact to pre-compute.
          p.comp_halfhyst[w] = 0.5 * lane.comparator_.config().hysteresis_v;
          p.comp_band[w] = lane.comparator_.config().metastable_band_v;
          p.clock_period[w] = lane.clock_period_s_;
        }
        packets_.push_back(p);
      }
      for (; i < members.size(); ++i) scalar_lanes_.push_back(members[i]);
    }
    std::sort(scalar_lanes_.begin(), scalar_lanes_.end());
  } else {
    for (std::size_t k = 0; k < lanes_.size(); ++k) {
      if (enabled_[k]) scalar_lanes_.push_back(k);
    }
  }
  views_.resize(packets_.size());
  for (std::size_t pi = 0; pi < packets_.size(); ++pi) {
    Packet& p = packets_[pi];
    bankkernel::PacketView& v = views_[pi];
    v.width = width_;
    v.x1 = p.x1.data();
    v.x2 = p.x2.data();
    v.d = p.d.data();
    v.last = p.last.data();
    v.time_s = p.time_s.data();
    v.max1 = p.max1.data();
    v.max2 = p.max2.data();
    v.clips = p.clips.data();
    v.u = p.u.data();
    v.g1 = p.g1.data();
    v.a1 = p.a1.data();
    v.p2 = p.p2.data();
    v.a2 = p.a2.data();
    v.scale = p.scale.data();
    v.leak1 = p.leak1.data();
    v.leak2 = p.leak2.data();
    v.swing1 = p.swing1.data();
    v.swing2 = p.swing2.data();
    v.settle1 = p.settle1.data();
    v.settle2 = p.settle2.data();
    v.comp_offset = p.comp_offset.data();
    v.comp_halfhyst = p.comp_halfhyst.data();
    v.comp_band = p.comp_band.data();
    v.clock_period = p.clock_period.data();
    v.ktc = p.ktc_on ? p.ktc.data() : nullptr;
    v.ref = p.ref_on ? p.ref.data() : nullptr;
    v.op1 = p.op1_on ? p.op1.data() : nullptr;
    v.fl1 = p.fl1_on ? p.fl1.data() : nullptr;
    v.op2 = p.op2_on ? p.op2.data() : nullptr;
    v.fl2 = p.fl2_on ? p.fl2.data() : nullptr;
    v.comp = p.comp_on ? p.comp.data() : nullptr;
    v.order2 = p.order2;
    v.settling = p.settling;
    v.bits = p.bits.data();
    v.ctx = &p;
    v.settle_fn = &ModulatorBank::settle_cb_;
    v.metastable_fn = &ModulatorBank::metastable_cb_;
  }
}

void ModulatorBank::load_packet_state_() {
  for (Packet& p : packets_) {
    for (std::size_t w = 0; w < width_; ++w) {
      DeltaSigmaModulator& lane = lanes_[p.lane[w]];
      p.u[w] = inputs_[p.lane[w]].u;
      p.x1[w] = lane.x1_;
      p.x2[w] = lane.x2_;
      p.d[w] = static_cast<double>(lane.bit_);
      p.last[w] = static_cast<double>(lane.comparator_.last_decision());
      p.time_s[w] = lane.time_s_;
      p.max1[w] = lane.max_x1_;
      p.max2[w] = lane.max_x2_;
      p.clips[w] = 0.0;  // per-block count, added to the lane's total after
    }
  }
}

void ModulatorBank::store_packet_state_() {
  for (Packet& p : packets_) {
    for (std::size_t w = 0; w < width_; ++w) {
      DeltaSigmaModulator& lane = lanes_[p.lane[w]];
      lane.x1_ = p.x1[w];
      lane.x2_ = p.x2[w];
      lane.bit_ = static_cast<int>(p.d[w]);
      lane.comparator_.set_last_decision(static_cast<int>(p.last[w]));
      lane.time_s_ = p.time_s[w];
      lane.max_x1_ = p.max1[w];
      lane.max_x2_ = p.max2[w];
      lane.clip_count_ += static_cast<std::size_t>(p.clips[w]);
    }
  }
}

void ModulatorBank::fill_lane_plans_(std::size_t frame) {
  // Each enabled lane's fill_noise_plan_, with every source group's Gaussian
  // generation batched across lanes through Rng::fill_gaussian_multi. The
  // streams are distinct objects, so batching changes neither any stream's
  // output nor its end state (multi == per-stream fill_gaussian, pinned by
  // test_rng.cpp), and the groups run in the same per-lane order as the
  // scalar helper. Zero-length fills are skipped on both paths (no-ops).
  const std::size_t K = lanes_.size();

  // Shared white stream: kT/C + reference + op-amp noise, interleaved.
  fill_rngs_.clear();
  fill_dests_.clear();
  fill_ns_.clear();
  fill_lanes_.clear();
  for (std::size_t k = 0; k < K; ++k) {
    if (!enabled_[k]) continue;
    const std::size_t count =
        frame * lanes_[k].shared_draws_per_clock_(inputs_[k].ktc);
    if (count == 0) continue;
    fill_rngs_.push_back(&lanes_[k].rng_);
    fill_dests_.push_back(shared_raw_.data() + k * 4 * kFrame);
    fill_ns_.push_back(count);
    fill_lanes_.push_back(k);
  }
  Rng::fill_gaussian_multi(fill_rngs_.data(), fill_dests_.data(),
                           fill_ns_.data(), fill_rngs_.size());
  // Packet lanes skip the NoisePlan arrays: fuse_shared_packet_plans_ writes
  // their scaled values straight into the transposed packet buffers. Only
  // scalar-stepped lanes (which consume through step_planned_) de-interleave
  // into plan_.
  for (std::size_t j = 0; j < fill_lanes_.size(); ++j) {
    const std::size_t k = fill_lanes_[j];
    if (lane_packet_[k] != kNoPacket) continue;
    lanes_[k].build_shared_plan_(frame, inputs_[k].sigma_u, inputs_[k].ktc,
                                 fill_dests_[j]);
  }
  fuse_shared_packet_plans_(frame);

  // Flicker streams: one standard normal per sample; the Voss-McCartney row
  // replay happens per lane from the batch-drawn values.
  for (int stage = 1; stage <= 2; ++stage) {
    fill_rngs_.clear();
    fill_dests_.clear();
    fill_ns_.clear();
    fill_lanes_.clear();
    for (std::size_t k = 0; k < K; ++k) {
      if (!enabled_[k]) continue;
      DeltaSigmaModulator& lane = lanes_[k];
      const bool on = stage == 1
                          ? lane.flicker_scale1_ > 0.0
                          : (lane.config_.order == 2 && lane.flicker_scale2_ > 0.0);
      if (!on) continue;
      PinkNoise& flicker = stage == 1 ? lane.flicker1_ : lane.flicker2_;
      fill_rngs_.push_back(&flicker.noise_stream());
      fill_dests_.push_back(flicker_raw_.data() + k * kFrame);
      fill_ns_.push_back(frame);
      fill_lanes_.push_back(k);
    }
    Rng::fill_gaussian_multi(fill_rngs_.data(), fill_dests_.data(),
                             fill_ns_.data(), fill_rngs_.size());
    for (std::size_t j = 0; j < fill_lanes_.size(); ++j) {
      DeltaSigmaModulator& lane = lanes_[fill_lanes_[j]];
      if (stage == 1) {
        lane.flicker1_.fill_next_from(fill_dests_[j], lane.plan_.flick1.data(),
                                      frame);
        lane.apply_flicker_scale1_(frame);
      } else {
        lane.flicker2_.fill_next_from(fill_dests_[j], lane.plan_.flick2.data(),
                                      frame);
        lane.apply_flicker_scale2_(frame);
      }
    }
  }

  // Comparator noise: plan_external does plan()'s bookkeeping (snapshot for
  // the metastable resync) and hands back the stream; the standard normals
  // are batch-drawn straight into each lane's plan buffer, then mapped with
  // the same affine fill_gaussian(…, 0.0, σ) applies.
  fill_rngs_.clear();
  fill_dests_.clear();
  fill_ns_.clear();
  fill_lanes_.clear();
  for (std::size_t k = 0; k < K; ++k) {
    if (!enabled_[k]) continue;
    Rng* stream =
        lanes_[k].comparator_.plan_external(lanes_[k].plan_.comp.data(), frame);
    if (stream == nullptr) continue;  // noise off: nothing pre-drawn
    fill_rngs_.push_back(stream);
    fill_dests_.push_back(lanes_[k].plan_.comp.data());
    fill_ns_.push_back(frame);
    fill_lanes_.push_back(k);
  }
  Rng::fill_gaussian_multi(fill_rngs_.data(), fill_dests_.data(),
                           fill_ns_.data(), fill_rngs_.size());
  for (std::size_t j = 0; j < fill_lanes_.size(); ++j) {
    const std::size_t k = fill_lanes_[j];
    const double sigma = lanes_[k].comparator_.config().noise_vrms;
    double* buf = fill_dests_[j];
    if (lane_packet_[k] != kNoPacket) {
      // Scale in place (the metastable resync regenerates tails from
      // plan_.comp) and write the transposed kernel copy in the same pass.
      Packet& p = packets_[lane_packet_[k]];
      double* t = p.comp.data() + lane_slot_[k];
      const std::size_t w_n = width_;
      for (std::size_t i = 0; i < frame; ++i) {
        const double x = 0.0 + sigma * buf[i];
        buf[i] = x;
        t[i * w_n] = x;
      }
    } else {
      for (std::size_t i = 0; i < frame; ++i) buf[i] = 0.0 + sigma * buf[i];
    }
  }

  for (std::size_t k = 0; k < K; ++k) {
    if (enabled_[k]) lanes_[k].finish_plan_(frame, inputs_[k].ktc);
  }
}

void ModulatorBank::fuse_shared_packet_plans_(std::size_t frame) {
  // build_shared_plan_'s de-interleave + per-source affine map, with the
  // [clock] → [clock][lane] transpose folded in so each value is computed
  // and stored exactly once. Expressions match the scalar draw sites
  // verbatim (including the 0.0 + that normalizes −0.0 products), so every
  // transposed value is bit-identical to the two-pass path it replaces.
  const std::size_t w_n = width_;
  for (Packet& p : packets_) {
    if (!p.ktc_on && !p.ref_on && !p.op1_on && !p.op2_on) continue;
#if defined(TONO_SIMD_AVX2)
    if (level_ == simd::Level::kAvx2 && p.ktc_on && p.ref_on && p.op1_on &&
        p.op2_on) {
      bankkernel::SharedFuseJob job;
      for (std::size_t w = 0; w < w_n; ++w) {
        const std::size_t lk = p.lane[w];
        const DeltaSigmaModulator& lane = lanes_[lk];
        job.raw[w] = shared_raw_.data() + lk * 4 * kFrame;
        job.sigma_u[w] = inputs_[lk].sigma_u;
        job.ref_vrms[w] = lane.config_.ref_noise_vrms;
        job.vref[w] = lane.config_.vref_v;
        job.op1_vrms[w] = lane.config_.opamp1.noise_vrms;
        job.op2_vrms[w] = lane.config_.opamp2.noise_vrms;
        job.scale[w] = lane.config_.loop.state_scale_v;
      }
      job.ktc = p.ktc.data();
      job.ref = p.ref.data();
      job.op1 = p.op1.data();
      job.op2 = p.op2.data();
      bankkernel::fuse_shared4_avx2(job, frame);
      continue;
    }
#endif
    for (std::size_t w = 0; w < w_n; ++w) {
      const std::size_t lk = p.lane[w];
      const DeltaSigmaModulator& lane = lanes_[lk];
      const double* raw = shared_raw_.data() + lk * 4 * kFrame;
      const double su = inputs_[lk].sigma_u;
      const double rv = lane.config_.ref_noise_vrms;
      const double vref = lane.config_.vref_v;
      const double o1 = lane.config_.opamp1.noise_vrms;
      const double o2 = lane.config_.opamp2.noise_vrms;
      const double sc = lane.config_.loop.state_scale_v;
      std::size_t j = 0;
      for (std::size_t i = 0; i < frame; ++i) {
        if (p.ktc_on) p.ktc[i * w_n + w] = 0.0 + su * raw[j++];
        if (p.ref_on) p.ref[i * w_n + w] = (0.0 + rv * raw[j++]) / vref;
        if (p.op1_on) p.op1[i * w_n + w] = (0.0 + o1 * raw[j++]) / sc;
        if (p.op2_on) p.op2[i * w_n + w] = (0.0 + o2 * raw[j++]) / sc;
      }
    }
  }
}

void ModulatorBank::transpose_packet_plans_(std::size_t frame) {
  // [clock] → [clock][lane] with stride = width_, for the plan-sourced
  // arrays that still materialize per lane (the flicker stages, whose
  // Voss-McCartney replay is inherently per-lane). Shared sources and
  // comparator noise are written transposed at generation time. Disabled
  // sources skip entirely (their view pointers are null, like the scalar
  // path's untaken branches).
  const std::size_t w_n = width_;
  for (Packet& p : packets_) {
    if (!p.fl1_on && !p.fl2_on) continue;
    for (std::size_t w = 0; w < w_n; ++w) {
      const auto& plan = lanes_[p.lane[w]].plan_;
      if (p.fl1_on) {
        for (std::size_t i = 0; i < frame; ++i) p.fl1[i * w_n + w] = plan.flick1[i];
      }
      if (p.fl2_on) {
        for (std::size_t i = 0; i < frame; ++i) p.fl2[i * w_n + w] = plan.flick2[i];
      }
    }
  }
}

double ModulatorBank::settle_cb_(void* ctx, std::size_t slot, int stage,
                                 double v) {
  Packet& p = *static_cast<Packet*>(ctx);
  DeltaSigmaModulator& lane = p.owner->lanes_[p.lane[slot]];
  const OpAmp& amp = stage == 1 ? lane.opamp1_ : lane.opamp2_;
  return amp.settle(v, lane.dt_phase_s_);
}

double ModulatorBank::metastable_cb_(void* ctx, std::size_t slot,
                                     std::size_t clock) {
  Packet& p = *static_cast<Packet*>(ctx);
  DeltaSigmaModulator& lane = p.owner->lanes_[p.lane[slot]];
  const int decision = lane.comparator_.decide_metastable_at(clock);
  if (p.comp_on) {
    // The resync regenerated the lane's linear plan tail (clock+1 …); the
    // kernel reads the transposed copy, so refresh it.
    const std::size_t w_n = p.owner->width_;
    for (std::size_t i = clock + 1; i < p.frame_len; ++i) {
      p.comp[i * w_n + slot] = lane.plan_.comp[i];
    }
  }
  return static_cast<double>(decision);
}

void ModulatorBank::step_scalar_lanes_(const std::vector<std::size_t>& lanes,
                                       int* bits_out, std::size_t n_total,
                                       std::size_t done, std::size_t frame) {
  if (lanes.empty()) return;
  // Clock-outer / lane-inner, so the lanes' independent FP chains overlap in
  // the core instead of serializing (same scheduling the kernel uses).
  for (std::size_t i = 0; i < frame; ++i) {
    for (const std::size_t k : lanes) {
      bits_out[k * n_total + done + i] = lanes_[k].step_planned_(inputs_[k].u);
    }
  }
}

void ModulatorBank::step_capacitive_block(const double* c_sense_f,
                                          const double* c_ref_f, int* bits_out,
                                          std::size_t n) {
  metrics::TraceSpan span(*step_block_timer_);
  if (n == 0) return;
  for (std::size_t k = 0; k < lanes_.size(); ++k) {
    if (enabled_[k]) {
      inputs_[k] = lanes_[k].capacitive_input_(c_sense_f[k], c_ref_f[k]);
    }
  }
  if (packets_dirty_) rebuild_packets_();
  load_packet_state_();
  std::size_t done = 0;
  while (done < n) {
    const std::size_t frame = std::min<std::size_t>(n - done, kFrame);
    fill_lane_plans_(frame);
    transpose_packet_plans_(frame);
    for (Packet& p : packets_) {
      p.frame_len = frame;
      for (std::size_t w = 0; w < width_; ++w) {
        p.bits[w] = bits_out + p.lane[w] * n + done;
      }
    }
    if (!packets_.empty()) kernel_(views_.data(), views_.size(), frame);
    step_scalar_lanes_(scalar_lanes_, bits_out, n, done, frame);
    done += frame;
  }
  store_packet_state_();
}

void ModulatorBank::step_capacitive_block(const double* c_sense_f, int* bits_out,
                                          std::size_t n) {
  // Mirror DeltaSigmaModulator::step_capacitive(c_sense): the reference
  // branch is each lane's configured on-chip capacitor with its die mismatch.
  std::vector<double> c_ref(lanes_.size());
  for (std::size_t k = 0; k < lanes_.size(); ++k) {
    c_ref[k] = lanes_[k].config_.c_ref_f * lanes_[k].ref_mismatch_;
  }
  step_capacitive_block(c_sense_f, c_ref.data(), bits_out, n);
}

void ModulatorBank::set_lane_enabled(std::size_t k, bool enabled) {
  if (k >= lanes_.size()) {
    throw std::out_of_range{"ModulatorBank::set_lane_enabled: bad lane"};
  }
  const std::uint8_t v = enabled ? 1 : 0;
  if (enabled_[k] != v) {
    enabled_[k] = v;
    packets_dirty_ = true;
  }
}

std::size_t ModulatorBank::enabled_lanes() const noexcept {
  std::size_t count = 0;
  for (const std::uint8_t e : enabled_) count += e;
  return count;
}

void ModulatorBank::reset() {
  for (auto& lane : lanes_) lane.reset();
}

void ModulatorBank::serialize(CheckpointWriter& out) const {
  out.section("modulator_bank");
  out.size(lanes_.size());
  for (const std::uint8_t e : enabled_) out.u8(e);
  for (const auto& lane : lanes_) lane.serialize(out);
}

void ModulatorBank::restore(CheckpointReader& in) {
  in.section("modulator_bank");
  const std::size_t lanes = in.size();
  if (lanes != lanes_.size()) {
    throw CheckpointError{"ModulatorBank checkpoint lane count " +
                          std::to_string(lanes) + " != configured " +
                          std::to_string(lanes_.size())};
  }
  for (auto& e : enabled_) {
    const std::uint8_t v = in.u8();
    if (v > 1) {
      throw CheckpointError{"ModulatorBank checkpoint enable flag corrupt"};
    }
    e = v;
  }
  for (auto& lane : lanes_) lane.restore(in);
  packets_dirty_ = true;
}

}  // namespace tono::analog
