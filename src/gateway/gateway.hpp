// gateway.hpp — per-session channel multiplexing over one Transport.
//
// Promotes the Fig. 3 USB link from an in-process encoder/decoder pair to a
// real wire shared by many patients (docs/GATEWAY.md). Each session gets a
// tagged *channel*; its 12-bit code stream travels as ordinary telemetry
// frames (FrameEncoder wire format, one per envelope) wrapped in a channel
// envelope:
//
//   2 B  envelope sync  0xC3 0x3C   (distinct from the frame sync A5 5A)
//   1 B  envelope version
//   4 B  channel id  (== session id, LE)
//   4 B  channel sequence (per-channel, wraps, LE)
//   2 B  n_codes — samples inside the payload (LE; exact drop accounting)
//   2 B  payload length (LE)
//   …    payload: one complete FrameEncoder frame
//   2 B  CRC-16/CCITT-FALSE over everything after the envelope sync
//
// The demux is a resynchronizing parser in the FrameDecoder mold: garbage
// between envelopes is skipped and counted, a corrupt envelope is a counted
// loss (never a wrong sample — the nested frame CRC would catch anything
// the envelope CRC somehow missed), and per-channel sequence gaps count
// lost envelopes. Every channel owns a private FrameDecoder, so frame-level
// LinkStats (sequence wraparound included) never cross-contaminate between
// interleaved sessions — property-tested in tests/test_gateway.cpp.
//
// Backpressure: the mux maps transport saturation onto the established ring
// policies. kDropOldest sheds the oldest queued envelope and counts exactly
// the codes its header declares; kBlock spins (counted stalls) until the
// transport accepts — and a lossless transport (TCP) always takes the
// kBlock path regardless of policy, because the wire itself cannot shed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <span>
#include <vector>

#include "src/common/metrics.hpp"
#include "src/common/ring_buffer.hpp"
#include "src/core/telemetry.hpp"
#include "src/gateway/transport.hpp"

namespace tono::gateway {

inline constexpr std::uint8_t kEnvelopeSync0 = 0xC3;
inline constexpr std::uint8_t kEnvelopeSync1 = 0x3C;
inline constexpr std::uint8_t kEnvelopeVersion = 1;
/// sync(2) + version(1) + channel(4) + seq(4) + n_codes(2) + length(2)
inline constexpr std::size_t kEnvelopeHeaderBytes = 15;
inline constexpr std::size_t kEnvelopeCrcBytes = 2;
[[nodiscard]] constexpr std::size_t envelope_wire_bytes(
    std::size_t payload_bytes) noexcept {
  return kEnvelopeHeaderBytes + payload_bytes + kEnvelopeCrcBytes;
}
/// Largest payload an envelope can carry (length field is u16); a whole
/// max-size frame (80 samples → 128 B) fits with room to spare.
inline constexpr std::size_t kMaxEnvelopePayload = 0xFFFF;

struct GatewayConfig {
  /// How transport saturation maps onto the wire (see header comment).
  BackpressurePolicy wire_policy{BackpressurePolicy::kBlock};
};

/// Sensor-side end: frames codes per channel and ships envelopes.
///
/// Threading: open_channel() for every session first (not thread-safe
/// against send); send()/send_encoded() are then safe from concurrent
/// worker threads — one mutex serializes envelope construction and
/// transport pushes, which also keeps the per-run envelope order
/// well-defined on the loopback queue.
class GatewayMux {
 public:
  explicit GatewayMux(Transport& transport, GatewayConfig config = {});

  void open_channel(std::uint32_t channel_id);

  /// Chunks `codes` into ≤ kMaxSamplesPerFrame frames on the channel's own
  /// FrameEncoder and sends one envelope per frame. Throws std::out_of_range
  /// for an unopened channel.
  void send(std::uint32_t channel_id, std::span<const std::int16_t> codes);

  /// Replay path: ships an already-encoded frame (recorded wire bytes)
  /// unmodified, preserving its original frame sequence number.
  void send_encoded(std::uint32_t channel_id, std::span<const std::uint8_t> frame,
                    std::uint16_t n_codes);

  [[nodiscard]] std::uint64_t frames_muxed() const noexcept { return frames_muxed_; }
  [[nodiscard]] std::uint64_t codes_sent() const noexcept { return codes_sent_; }
  /// Bytes accepted by the transport (dropped envelopes were accepted first,
  /// then shed — see codes_dropped for the loss accounting).
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept { return bytes_sent_; }
  [[nodiscard]] std::uint64_t envelopes_dropped() const noexcept {
    return envelopes_dropped_;
  }
  /// Exactly the codes inside shed envelopes (from their n_codes headers).
  [[nodiscard]] std::uint64_t codes_dropped() const noexcept { return codes_dropped_; }
  [[nodiscard]] std::uint64_t backpressure_blocks() const noexcept {
    return backpressure_blocks_;
  }

 private:
  struct Channel {
    core::FrameEncoder encoder;
    std::uint32_t next_sequence{0};
  };

  void ship_(Channel& channel, std::uint32_t channel_id,
             std::span<const std::uint8_t> frame, std::uint16_t n_codes);

  Transport& transport_;
  GatewayConfig config_;
  std::mutex mutex_;
  std::map<std::uint32_t, Channel> channels_;
  std::uint64_t frames_muxed_{0};
  std::uint64_t codes_sent_{0};
  std::uint64_t bytes_sent_{0};
  std::uint64_t envelopes_dropped_{0};
  std::uint64_t codes_dropped_{0};
  std::uint64_t backpressure_blocks_{0};
  metrics::Counter* frames_metric_;
  metrics::Counter* bytes_metric_;
  metrics::Counter* blocks_metric_;
  metrics::Counter* envelopes_dropped_metric_;
  metrics::Counter* codes_dropped_metric_;
};

/// Per-channel receive-side accounting (envelope level; the nested frame
/// level lives in the channel FrameDecoder's LinkStats).
struct ChannelStats {
  std::uint64_t envelopes_ok{0};
  std::uint64_t lost_envelopes{0};  ///< inferred from channel sequence gaps
  std::uint64_t frames_decoded{0};
  std::uint64_t codes_delivered{0};
};

/// Ward-side end: parses envelopes off the transport, routes each payload
/// through its channel's FrameDecoder and delivers decoded codes in order.
///
/// Threading: pump()/pump_until_bytes() from one thread at a time (the
/// batch-barrier pump in the fleet integration runs on the shard driver).
class GatewayDemux {
 public:
  explicit GatewayDemux(Transport& transport);

  void open_channel(std::uint32_t channel_id);

  /// Delivery callback: decoded codes for one channel, called in wire order
  /// from inside pump(). Codes for an unopened channel are counted
  /// (unknown_channel_envelopes) and discarded, never misrouted.
  void on_codes(
      std::function<void(std::uint32_t, std::span<const std::int16_t>)> callback) {
    on_codes_ = std::move(callback);
  }

  /// Recorder tap: every CRC-validated envelope's payload (the raw frame
  /// bytes as they crossed the wire), before decoding. SessionRecorder
  /// hangs off this, so a recording captures exactly the consumed stream.
  void on_envelope(std::function<void(std::uint32_t, std::span<const std::uint8_t>,
                                      std::uint16_t)>
                       callback) {
    on_envelope_ = std::move(callback);
  }

  /// Drains everything the transport currently has; returns codes delivered.
  std::size_t pump();

  /// Pumps until `target` total bytes have been received (lossless wire:
  /// the sender's bytes_sent()), the transport closes, or ~timeout_ms
  /// passes. Returns true when the byte target was met.
  bool pump_until_bytes(std::uint64_t target, int timeout_ms = 10000);

  [[nodiscard]] std::uint64_t bytes_received() const noexcept {
    return bytes_received_;
  }
  [[nodiscard]] std::uint64_t crc_errors() const noexcept { return crc_errors_; }
  [[nodiscard]] std::uint64_t resync_bytes() const noexcept { return resync_bytes_; }
  [[nodiscard]] std::uint64_t unknown_channel_envelopes() const noexcept {
    return unknown_channel_envelopes_;
  }
  [[nodiscard]] const ChannelStats& channel_stats(std::uint32_t channel_id) const;
  /// The channel's frame-level link accounting (sequence wraparound safe,
  /// isolated per session).
  [[nodiscard]] const core::LinkStats& link_stats(std::uint32_t channel_id) const;

 private:
  struct Channel {
    core::FrameDecoder decoder;
    ChannelStats stats;
    bool seen_sequence{false};
    std::uint32_t last_sequence{0};
  };

  /// Envelope analogue of FrameDecoder::try_parse_at: returns bytes
  /// consumed at `offset` (0 = need more data, 1 = resync step).
  std::size_t try_parse_at_(std::size_t offset);

  Transport& transport_;
  std::vector<std::uint8_t> buffer_;
  std::map<std::uint32_t, Channel> channels_;
  std::function<void(std::uint32_t, std::span<const std::int16_t>)> on_codes_;
  std::function<void(std::uint32_t, std::span<const std::uint8_t>, std::uint16_t)>
      on_envelope_;
  std::uint64_t bytes_received_{0};
  std::uint64_t crc_errors_{0};
  std::uint64_t resync_bytes_{0};
  std::uint64_t unknown_channel_envelopes_{0};
  std::size_t codes_delivered_this_pump_{0};
  metrics::Counter* frames_metric_;
  metrics::Counter* bytes_metric_;
  metrics::Counter* crc_errors_metric_;
  metrics::Counter* resyncs_metric_;
  metrics::Counter* lost_envelopes_metric_;
  metrics::Gauge* channels_gauge_;
};

}  // namespace tono::gateway
