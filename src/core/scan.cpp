#include "src/core/scan.hpp"

#include <stdexcept>

#include "src/common/statistics.hpp"

namespace tono::core {

ScanController::ScanController(const ScanConfig& config) : config_(config) {
  if (config_.dwell_samples == 0) {
    throw std::invalid_argument{"ScanController: dwell must be > 0"};
  }
  if (config_.low_percentile >= config_.high_percentile) {
    throw std::invalid_argument{"ScanController: bad percentile span"};
  }
}

ScanResult ScanController::scan(AcquisitionPipeline& pipeline,
                                const ContactField& field) const {
  ScanResult result;
  const std::size_t rows = pipeline.array().rows();
  const std::size_t cols = pipeline.array().cols();
  result.elements.reserve(rows * cols);

  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      pipeline.select(r, c);
      // Discard the decimation-chain transient after the switch.
      auto settle = pipeline.acquire(field, config_.settle_samples);
      (void)settle;
      const auto window = pipeline.acquire(field, config_.dwell_samples);
      std::vector<double> values;
      values.reserve(window.size());
      for (const auto& s : window) values.push_back(s.value);

      ElementSignal sig;
      sig.row = r;
      sig.col = c;
      sig.amplitude = percentile(values, config_.high_percentile) -
                      percentile(values, config_.low_percentile);
      sig.mean_level = mean(values);
      result.elements.push_back(sig);

      if (sig.amplitude > result.best_amplitude) {
        result.best_amplitude = sig.amplitude;
        result.best_row = r;
        result.best_col = c;
      }
    }
  }
  pipeline.select(result.best_row, result.best_col);
  return result;
}

}  // namespace tono::core
