// fault_plan.hpp — seeded per-session schedules of injectable runtime faults.
//
// The fleet's robustness story (docs/FLEET.md): continuous monitoring must be
// exercised against realistic disturbance schedules, not just clean runs. A
// FaultPlan is the schedule — a sorted list of FaultEvents a PatientSession
// executes against itself as its stream time passes each onset:
//
//   kContactLoss   — the wrist leaves the sensor: the contact field reads
//                    0 Pa for `duration_s`. Transient; by default the first
//                    step into the window throws once (exercising the
//                    scheduler's quarantine → readmit path), after which the
//                    window applies as plain signal degradation.
//   kLinkBurst     — the Fig. 3 USB link corrupts frames for `duration_s`
//                    (LinkFaultInjector, src/core/telemetry.hpp); the
//                    decoder's CRC/resync accounting turns corruption into
//                    counted losses, never wrong samples.
//   kElementFault  — a membrane fails mid-run (core::ElementFault, runtime
//                    flavour of the config-time yield faults). Permanent; the
//                    session degrades gracefully by re-routing readout to the
//                    first healthy element, and only throws when none is left.
//
// Determinism contract: a generated plan depends only on (FaultPlanConfig,
// seed, array shape). The session seeds it from its own forked RNG stream, so
// the schedule — and everything downstream of it — is bit-identical whether
// the session runs solo, in a serial fleet, or across N threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/core/chip_config.hpp"
#include "src/core/telemetry.hpp"

namespace tono::fleet {

enum class FaultKind : std::uint8_t {
  kContactLoss,   ///< transient sensor-contact loss (field reads 0 Pa)
  kLinkBurst,     ///< telemetry link corruption burst
  kElementFault,  ///< a membrane fails mid-run (permanent)
};

[[nodiscard]] std::string to_string(FaultKind kind);

/// A fault event that throws this many times never stops throwing: the
/// session strikes out through the scheduler's readmission budget to
/// kRetired.
inline constexpr std::size_t kUnrecoverableThrows =
    std::numeric_limits<std::size_t>::max();

struct FaultEvent {
  FaultKind kind{FaultKind::kContactLoss};
  double at_s{0.0};        ///< onset, session stream time (0 = monitoring start)
  double duration_s{0.0};  ///< degradation window; element faults are permanent
  std::size_t row{0};      ///< element faults only
  std::size_t col{0};
  core::ElementFault element_fault{core::ElementFault::kNotReleased};
  /// How many step attempts into this event abort with an exception before
  /// the degradation applies silently. Each throw is one quarantine strike;
  /// 0 = degrade without ever throwing, kUnrecoverableThrows = strike out.
  std::size_t throw_count{1};
};

struct FaultPlanConfig {
  std::size_t contact_loss_events{0};
  std::size_t link_bursts{0};
  std::size_t element_faults{0};
  /// Generated onsets are uniform in [min_onset_s, horizon_s).
  double min_onset_s{0.25};
  double horizon_s{8.0};
  double contact_loss_duration_s{0.40};
  double link_burst_duration_s{0.40};
  /// Probability a generated contact-loss event is unrecoverable (throws on
  /// every readmission) instead of throwing exactly once.
  double unrecoverable_prob{0.0};
  /// Per-frame corruption model applied during link bursts.
  core::LinkFaultConfig link{};

  [[nodiscard]] bool empty() const noexcept {
    return contact_loss_events + link_bursts + element_faults == 0;
  }
};

/// The schedule itself: generated from (config, seed, array shape) and/or
/// hand-written via add(). events() is always sorted by onset (stable order
/// for ties: generation order, then insertion order).
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Generates the configured number of events entirely from `seed`. Element
  /// fault coordinates are drawn inside rows × cols; both dimensions must be
  /// nonzero when element faults are requested.
  FaultPlan(const FaultPlanConfig& config, std::uint64_t seed,
            std::size_t array_rows, std::size_t array_cols);

  /// Appends a hand-written event (tests, targeted scenarios) and re-sorts.
  void add(const FaultEvent& event);

  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] bool has_link_bursts() const noexcept;
  [[nodiscard]] const core::LinkFaultConfig& link_config() const noexcept {
    return link_config_;
  }

  /// Human-readable one-liner for fault logs, deterministic across
  /// platforms: "contact loss at 1.250 s for 0.400 s".
  [[nodiscard]] static std::string describe(const FaultEvent& event);

 private:
  void sort_();

  std::vector<FaultEvent> events_;
  core::LinkFaultConfig link_config_{};
};

}  // namespace tono::fleet
