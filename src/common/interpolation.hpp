// interpolation.hpp — tabulated-function interpolation.
//
// Used by the bio substrate (beat-shape templates, oscillometric envelopes)
// and by calibration curves. Linear interpolation for monotone lookup tables
// and natural cubic splines for smooth physiological templates.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tono {

/// Piecewise-linear interpolant over strictly increasing knots.
/// Evaluation outside the knot range clamps to the end values (physiological
/// templates must never extrapolate wildly).
class LinearInterpolator {
 public:
  /// Throws std::invalid_argument unless xs is strictly increasing and
  /// xs.size() == ys.size() >= 2.
  LinearInterpolator(std::span<const double> xs, std::span<const double> ys);

  [[nodiscard]] double operator()(double x) const noexcept;

  [[nodiscard]] double x_min() const noexcept { return xs_.front(); }
  [[nodiscard]] double x_max() const noexcept { return xs_.back(); }
  [[nodiscard]] std::size_t size() const noexcept { return xs_.size(); }

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

/// Monotonicity-preserving piecewise-cubic interpolant (PCHIP, the
/// Fritsch–Carlson scheme): C¹ smooth like a spline, but the value on every
/// segment stays within [min(y_i, y_{i+1}), max(y_i, y_{i+1})] — no
/// overshoot, ever. This is the right tool for physiological setpoint
/// trajectories: a natural cubic spline fitted through a fast blood-pressure
/// transition rings past the keyframes and can momentarily invert
/// systolic/diastolic ordering; PCHIP cannot, by construction.
/// Evaluation outside the knot range clamps to the end values.
class MonotoneCubicInterpolator {
 public:
  /// Throws std::invalid_argument unless xs is strictly increasing and
  /// xs.size() == ys.size() >= 2. Two points degenerate to linear.
  MonotoneCubicInterpolator(std::span<const double> xs, std::span<const double> ys);

  [[nodiscard]] double operator()(double x) const noexcept;

  /// First derivative (clamped region has slope 0).
  [[nodiscard]] double derivative(double x) const noexcept;

  [[nodiscard]] double x_min() const noexcept { return xs_.front(); }
  [[nodiscard]] double x_max() const noexcept { return xs_.back(); }
  [[nodiscard]] std::size_t size() const noexcept { return xs_.size(); }

 private:
  [[nodiscard]] std::size_t segment_of(double x) const noexcept;

  std::vector<double> xs_;
  std::vector<double> ys_;
  std::vector<double> slope_;  ///< Fritsch–Carlson limited tangents at knots
};

/// Natural cubic spline over strictly increasing knots (second derivative
/// zero at both ends). Clamped evaluation outside the range like
/// LinearInterpolator. NOTE: between knots a natural spline can overshoot
/// the data (Runge ringing at sharp transitions) — use
/// MonotoneCubicInterpolator when values must stay inside the keyframe
/// envelope.
class CubicSpline {
 public:
  /// Throws std::invalid_argument unless xs is strictly increasing and
  /// xs.size() == ys.size() >= 3.
  CubicSpline(std::span<const double> xs, std::span<const double> ys);

  [[nodiscard]] double operator()(double x) const noexcept;

  /// First derivative of the spline at x (clamped region has slope 0).
  [[nodiscard]] double derivative(double x) const noexcept;

  [[nodiscard]] double x_min() const noexcept { return xs_.front(); }
  [[nodiscard]] double x_max() const noexcept { return xs_.back(); }

 private:
  [[nodiscard]] std::size_t segment_of(double x) const noexcept;

  std::vector<double> xs_;
  std::vector<double> ys_;
  std::vector<double> second_;  // second derivatives at knots
};

}  // namespace tono
