// thread_pool.hpp — a small fixed-size worker pool for the sweep engine.
//
// Plain std::thread workers draining one mutex-guarded task queue. Nothing
// clever on purpose: SweepRunner, built on top, guarantees bit-identical
// results regardless of scheduling, so the pool only has to be correct —
// throughput is dominated by the trials themselves, not queue overhead.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/metrics.hpp"

namespace tono {

class ThreadPool {
 public:
  /// `thread_count` 0 → std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t thread_count = 0);

  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw — capture exceptions inside the
  /// task (SweepRunner stores them per trial and rethrows on the caller).
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

 private:
  void worker_loop_();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t running_{0};  ///< tasks currently executing
  bool stop_{false};
  // Observability (resolved once here; updated lock-free or under the
  // queue lock already held — see docs/OBSERVABILITY.md).
  metrics::Counter* tasks_submitted_;
  metrics::Counter* tasks_executed_;
  metrics::Gauge* peak_queue_depth_;
};

}  // namespace tono
