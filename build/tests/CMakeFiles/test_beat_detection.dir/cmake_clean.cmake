file(REMOVE_RECURSE
  "CMakeFiles/test_beat_detection.dir/test_beat_detection.cpp.o"
  "CMakeFiles/test_beat_detection.dir/test_beat_detection.cpp.o.d"
  "test_beat_detection"
  "test_beat_detection.pdb"
  "test_beat_detection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_beat_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
