// Tests for time-varying physiological scenarios and monitor tracking.
#include "src/bio/scenario.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "src/core/monitor.hpp"

namespace tono::bio {
namespace {

TEST(Scenario, InterpolatesBetweenKeyframes) {
  ScenarioProfile p{{ScenarioKeyframe{0.0, 120.0, 80.0, 70.0},
                     ScenarioKeyframe{10.0, 140.0, 90.0, 90.0}},
                    "ramp"};
  const auto mid = p.at(5.0);
  EXPECT_NEAR(mid.systolic_mmhg, 130.0, 1e-9);
  EXPECT_NEAR(mid.diastolic_mmhg, 85.0, 1e-9);
  EXPECT_NEAR(mid.heart_rate_bpm, 80.0, 1e-9);
}

TEST(Scenario, ClampsOutsideRange) {
  ScenarioProfile p{{ScenarioKeyframe{0.0, 120.0, 80.0, 70.0},
                     ScenarioKeyframe{10.0, 140.0, 90.0, 90.0}}};
  EXPECT_NEAR(p.at(-5.0).systolic_mmhg, 120.0, 1e-9);
  EXPECT_NEAR(p.at(100.0).systolic_mmhg, 140.0, 1e-9);
  EXPECT_NEAR(p.duration_s(), 10.0, 1e-12);
}

TEST(Scenario, RejectsBadKeyframes) {
  EXPECT_THROW((ScenarioProfile{{ScenarioKeyframe{}}}), std::invalid_argument);
  EXPECT_THROW((ScenarioProfile{{ScenarioKeyframe{5.0}, ScenarioKeyframe{1.0}}}),
               std::invalid_argument);
  EXPECT_THROW((ScenarioProfile{{ScenarioKeyframe{0.0, 80.0, 90.0, 70.0},
                                 ScenarioKeyframe{1.0}}}),
               std::invalid_argument);
}

TEST(Scenario, PresetsWellFormed) {
  const auto ex = ScenarioProfile::exercise();
  EXPECT_GT(ex.duration_s(), 60.0);
  // Peak exercise raises both pressure and heart rate.
  EXPECT_GT(ex.at(90.0).systolic_mmhg, ex.at(0.0).systolic_mmhg + 20.0);
  EXPECT_GT(ex.at(90.0).heart_rate_bpm, ex.at(0.0).heart_rate_bpm + 30.0);

  const auto hypo = ScenarioProfile::hypotensive_episode();
  EXPECT_LT(hypo.at(60.0).systolic_mmhg, hypo.at(0.0).systolic_mmhg - 25.0);
}

TEST(Scenario, GeneratorFollowsAppliedTargets) {
  PulseConfig cfg;
  cfg.drift_mmhg_per_sqrt_s = 0.0;
  ArterialPulseGenerator gen{cfg};
  const ScenarioProfile ramp{{ScenarioKeyframe{0.0, 120.0, 80.0, 70.0},
                              ScenarioKeyframe{30.0, 150.0, 95.0, 100.0}}};
  for (int i = 0; i < 30 * 250; ++i) {
    const double t = i / 250.0;
    if (i % 25 == 0) ramp.apply(gen, t);
    (void)gen.sample(1.0 / 250.0);
  }
  const auto& truth = gen.beat_truth();
  ASSERT_GE(truth.size(), 20u);
  // Late beats track the raised setpoints.
  const auto& late = truth.back();
  EXPECT_GT(late.systolic_mmhg, 140.0);
  EXPECT_LT(late.interval_s, 0.7);  // ~100 bpm
}

TEST(Scenario, SetTargetsValidates) {
  ArterialPulseGenerator gen{PulseConfig{}};
  EXPECT_THROW(gen.set_targets(80.0, 90.0, 70.0), std::invalid_argument);
  EXPECT_THROW(gen.set_targets(120.0, 80.0, 5.0), std::invalid_argument);
  EXPECT_NO_THROW(gen.set_targets(140.0, 90.0, 95.0));
}

TEST(Scenario, MonitorTracksHypotensiveEpisode) {
  core::WristModel wrist;
  wrist.scenario =
      std::make_shared<ScenarioProfile>(ScenarioProfile::hypotensive_episode(120.0));
  core::BloodPressureMonitor mon{core::ChipConfig::paper_chip(), wrist};
  (void)mon.calibrate(12.0);
  // Monitor through the crash (which happens around t = 42..60 s).
  const auto before = mon.monitor(15.0);   // ~t 12-27 s: still stable
  (void)mon.monitor(25.0);                 // ride through the onset
  const auto nadir = mon.monitor(15.0);    // ~t 52-67 s: deep in the episode
  ASSERT_GE(before.beats.beats.size(), 10u);
  ASSERT_GE(nadir.beats.beats.size(), 10u);
  // The sensor sees the crash: systolic falls by tens of mmHg and HR rises.
  EXPECT_LT(nadir.beats.mean_systolic, before.beats.mean_systolic - 20.0);
  EXPECT_GT(nadir.beats.heart_rate_bpm, before.beats.heart_rate_bpm + 10.0);
  // And it still tracks the (changing) ground truth decently.
  EXPECT_LT(std::abs(nadir.map_error_mmhg), 10.0);
}

// --- Regression tests for the invalid-target bug (PR 10): the old natural
// cubic spline overshot sharp keyframe transitions, which could push the
// interpolated diastolic above the systolic (or blood pressure outside any
// physiological envelope). The profile now interpolates (diastolic, pulse
// pressure) with a monotone cubic and floors the pulse pressure.

TEST(Scenario, SharpStepStaysInsideKeyframeEnvelope) {
  const ScenarioProfile p{{ScenarioKeyframe{0.0, 120.0, 80.0, 70.0},
                           ScenarioKeyframe{10.0, 120.0, 80.0, 70.0},
                           ScenarioKeyframe{10.5, 150.0, 90.0, 95.0},
                           ScenarioKeyframe{30.0, 150.0, 90.0, 95.0}},
                          "step"};
  for (double t = -5.0; t <= 35.0; t += 0.01) {
    const auto kf = p.at(t);
    ASSERT_GE(kf.systolic_mmhg, 120.0 - 1e-9) << "t=" << t;
    ASSERT_LE(kf.systolic_mmhg, 150.0 + 1e-9) << "t=" << t;
    ASSERT_GE(kf.diastolic_mmhg, 80.0 - 1e-9) << "t=" << t;
    ASSERT_LE(kf.diastolic_mmhg, 90.0 + 1e-9) << "t=" << t;
    ASSERT_GE(kf.heart_rate_bpm, 70.0 - 1e-9) << "t=" << t;
    ASSERT_LE(kf.heart_rate_bpm, 95.0 + 1e-9) << "t=" << t;
  }
}

TEST(Scenario, AdversarialProfilesAlwaysProduceValidTargets) {
  // Profiles engineered to trip interpolation pathologies: near-touching
  // sys/dia, abrupt reversals, long flats followed by spikes.
  const std::vector<ScenarioProfile> profiles{
      ScenarioProfile{{ScenarioKeyframe{0.0, 86.0, 80.0, 70.0},
                       ScenarioKeyframe{1.0, 180.0, 60.0, 160.0},
                       ScenarioKeyframe{2.0, 86.0, 80.0, 70.0},
                       ScenarioKeyframe{3.0, 180.0, 60.0, 160.0}},
                      "whipsaw"},
      ScenarioProfile{{ScenarioKeyframe{0.0, 120.0, 119.0, 70.0},
                       ScenarioKeyframe{5.0, 121.0, 120.0, 71.0}},
                      "paper-thin-pp"},
      ScenarioProfile{{ScenarioKeyframe{0.0, 120.0, 80.0, 70.0},
                       ScenarioKeyframe{60.0, 120.0, 80.0, 70.0},
                       ScenarioKeyframe{60.1, 200.0, 120.0, 240.0},
                       ScenarioKeyframe{120.0, 90.0, 55.0, 40.0}},
                      "flat-then-spike"},
  };
  for (const auto& p : profiles) {
    for (double t = -10.0; t <= p.t_max() + 20.0; t += 0.005) {
      const auto kf = p.at(t);
      ASSERT_GE(kf.systolic_mmhg,
                kf.diastolic_mmhg + ScenarioProfile::kMinPulsePressureMmhg - 1e-9)
          << p.name() << " t=" << t;
      ASSERT_GT(kf.heart_rate_bpm, 20.0) << p.name() << " t=" << t;
      ASSERT_LE(kf.heart_rate_bpm, 250.0 + 1e-9) << p.name() << " t=" << t;
      ASSERT_GT(kf.diastolic_mmhg, 0.0) << p.name() << " t=" << t;
    }
  }
}

TEST(Scenario, PulsePressureFloorEnforced) {
  // Keyframes are allowed down to sys > dia; the query-time floor keeps the
  // generator's targets apart even there.
  const ScenarioProfile p{{ScenarioKeyframe{0.0, 82.0, 80.0, 70.0},
                           ScenarioKeyframe{10.0, 83.0, 81.0, 70.0}},
                          "thin"};
  for (double t = 0.0; t <= 10.0; t += 0.05) {
    const auto kf = p.at(t);
    EXPECT_GE(kf.systolic_mmhg - kf.diastolic_mmhg,
              ScenarioProfile::kMinPulsePressureMmhg - 1e-12);
  }
}

TEST(Scenario, ApplyNeverThrowsOnAdversarialProfile) {
  const ScenarioProfile p{{ScenarioKeyframe{0.0, 86.0, 80.0, 70.0},
                           ScenarioKeyframe{1.0, 180.0, 60.0, 160.0},
                           ScenarioKeyframe{2.0, 86.0, 80.0, 70.0}},
                          "whipsaw"};
  ArterialPulseGenerator gen{PulseConfig{}};
  for (double t = -2.0; t <= 6.0; t += 0.01) {
    EXPECT_NO_THROW(p.apply(gen, t)) << "t=" << t;
  }
}

TEST(Scenario, NewPresetsWellFormed) {
  const auto arr = ScenarioProfile::arrhythmia_train(240.0);
  EXPECT_NEAR(arr.duration_s(), 240.0, 1e-9);
  // The paroxysmal bursts drive the rate well above baseline.
  double peak_hr = 0.0;
  for (double t = 0.0; t <= 240.0; t += 0.25) {
    peak_hr = std::max(peak_hr, arr.at(t).heart_rate_bpm);
  }
  EXPECT_GT(peak_hr, arr.at(0.0).heart_rate_bpm + 40.0);

  const auto drift = ScenarioProfile::cuff_recalibration_drift(300.0);
  EXPECT_NEAR(drift.duration_s(), 300.0, 1e-9);
  // Sawtooth: systolic sags below baseline, then snaps back at recalibration.
  double min_sys = 1e9;
  for (double t = 0.0; t <= 300.0; t += 0.25) {
    min_sys = std::min(min_sys, drift.at(t).systolic_mmhg);
  }
  EXPECT_LT(min_sys, drift.at(0.0).systolic_mmhg - 5.0);
  EXPECT_NEAR(drift.at(300.0).systolic_mmhg, drift.at(0.0).systolic_mmhg, 2.0);

  const auto aging = ScenarioProfile::sensor_aging(600.0);
  EXPECT_NEAR(aging.duration_s(), 600.0, 1e-9);
  // Monotone decline of both pressure and pulse pressure.
  const auto start = aging.at(0.0);
  const auto end = aging.at(600.0);
  EXPECT_LT(end.systolic_mmhg, start.systolic_mmhg - 8.0);
  EXPECT_LT(end.systolic_mmhg - end.diastolic_mmhg,
            start.systolic_mmhg - start.diastolic_mmhg - 5.0);
  // All three presets obey the global target invariant.
  for (const auto* p : {&arr, &drift, &aging}) {
    for (double t = -5.0; t <= p->t_max() + 10.0; t += 0.2) {
      const auto kf = p->at(t);
      ASSERT_GE(kf.systolic_mmhg,
                kf.diastolic_mmhg + ScenarioProfile::kMinPulsePressureMmhg - 1e-9)
          << p->name() << " t=" << t;
    }
  }
}

}  // namespace
}  // namespace tono::bio
