file(REMOVE_RECURSE
  "CMakeFiles/test_windkessel.dir/test_windkessel.cpp.o"
  "CMakeFiles/test_windkessel.dir/test_windkessel.cpp.o.d"
  "test_windkessel"
  "test_windkessel.pdb"
  "test_windkessel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_windkessel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
